//! Engine configuration: the tunable index parameters of the paper's
//! Table 2 plus every optimization toggle the evaluation ablates.

use upmem_sim::tasklet::LockPolicy;

/// Quantization bit-width regime for residuals/codebooks on the DPUs.
///
/// Decides the squaring-LUT layout: 8-bit operands need a 256-entry SQT that
/// fits entirely in WRAM; 16-bit operands need a 64Ki-entry SQT of which only
/// a hot window is WRAM-resident (paper Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataBits {
    /// 8-bit integers (the paper's main regime: SIFT and quantized DEEP).
    #[default]
    B8,
    /// 16-bit integers.
    B16,
}

impl DataBits {
    /// Bytes per scalar.
    pub fn bytes(self) -> u64 {
        match self {
            DataBits::B8 => 1,
            DataBits::B16 => 2,
        }
    }
}

/// The tunable index parameters `(K, P, C, M, CB)` of paper Table 2.
///
/// `C` (mean cluster population) is controlled through `nlist`:
/// `C = N / nlist` for a corpus of `N` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// `K`: neighbors returned per query.
    pub k: usize,
    /// `P` (`nprobe`): clusters scanned per query.
    pub nprobe: usize,
    /// Number of coarse clusters (`C = N / nlist`).
    pub nlist: usize,
    /// `M`: PQ sub-quantizers.
    pub m: usize,
    /// `CB`: codebook entries per subspace.
    pub cb: usize,
}

impl IndexConfig {
    /// The configuration of the paper's Fig. 7(a): nlist=2^14, nprobe=96,
    /// M=16, CB=256, recall@10.
    pub fn paper_default() -> Self {
        IndexConfig {
            k: 10,
            nprobe: 96,
            nlist: 1 << 14,
            m: 16,
            cb: 256,
        }
    }

    /// Mean cluster population for a corpus of `n` vectors.
    pub fn mean_cluster_size(&self, n: u64) -> f64 {
        n as f64 / self.nlist as f64
    }
}

/// Cluster-slice allocation policy across DPUs (paper Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Slices assigned to DPUs in order, ignoring heat — the imbalanced
    /// baseline of Fig. 13.
    RoundRobin,
    /// Heat-balanced greedy allocation plus the co-location exchange pass
    /// (the paper's "mixed layout").
    #[default]
    HeatBalanced,
}

/// Runtime query-to-DPU scheduling policy (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Every task runs on its cluster's primary replica.
    Static,
    /// Greedy coldest-replica scheduling with `th3` postponement.
    #[default]
    Greedy,
}

/// Rejected engine configuration — returned instead of panicking so
/// callers (the DSE, serving layers) can degrade or reject a request
/// rather than abort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `k` must be at least 1.
    ZeroK,
    /// `nlist` must be at least 1.
    ZeroNlist,
    /// `m` must be at least 1.
    ZeroM,
    /// `nprobe` must be in `1..=nlist`.
    BadNprobe {
        /// Requested probes.
        nprobe: usize,
        /// Available clusters.
        nlist: usize,
    },
    /// `cb` must be in `2..=65536` (codes are stored as u16).
    BadCb(usize),
    /// Batch size must be at least 1.
    ZeroBatch,
    /// At least one tasklet must be resident.
    ZeroTasklets,
    /// `th3` must be non-negative (or infinite to disable postponement).
    BadTh3(f64),
    /// The SQT WRAM window must be at least 1 entry.
    ZeroSqtWindow,
    /// Recovery parameters are malformed; the payload names the field.
    BadRecovery(&'static str),
    /// Maintenance parameters are malformed; the payload names the field.
    BadMaintenance(&'static str),
    /// Fault-injection parameters were rejected by the simulator.
    BadFault(upmem_sim::fault::FaultConfigError),
    /// `ranks` was `Some(0)` — a rank topology needs at least one rank.
    ZeroRanks,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroK => write!(f, "k must be at least 1"),
            ConfigError::ZeroNlist => write!(f, "nlist must be at least 1"),
            ConfigError::ZeroM => write!(f, "m must be at least 1"),
            ConfigError::BadNprobe { nprobe, nlist } => {
                write!(f, "nprobe {nprobe} must lie in 1..={nlist}")
            }
            ConfigError::BadCb(cb) => write!(f, "cb {cb} must lie in 2..=65536"),
            ConfigError::ZeroBatch => write!(f, "batch size must be at least 1"),
            ConfigError::ZeroTasklets => write!(f, "at least one tasklet must be resident"),
            ConfigError::BadTh3(v) => write!(f, "th3 {v} must be non-negative"),
            ConfigError::ZeroSqtWindow => write!(f, "sqt_window must be at least 1 entry"),
            ConfigError::BadRecovery(field) => write!(f, "invalid recovery parameter: {field}"),
            ConfigError::BadMaintenance(field) => {
                write!(f, "invalid maintenance parameter: {field}")
            }
            ConfigError::BadFault(e) => write!(f, "invalid fault configuration: {e}"),
            ConfigError::ZeroRanks => write!(f, "ranks must be at least 1 when set"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<upmem_sim::fault::FaultConfigError> for ConfigError {
    fn from(e: upmem_sim::fault::FaultConfigError) -> Self {
        ConfigError::BadFault(e)
    }
}

/// Recovery policy of the fault-tolerant dispatch layer (inert unless a
/// fault injector is attached to the engine's [`upmem_sim::system::PimSystem`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Re-dispatch waves after the initial one before escalating to the
    /// host fallback (or dropping, if the fallback is off).
    pub max_retries: usize,
    /// Consecutive transient faults (within a batch) before a DPU is
    /// quarantined for the remainder of that batch.
    pub quarantine_after: u32,
    /// Hedge stragglers: when a slowed DPU would overshoot the deadline,
    /// stop waiting and re-issue its tasks on replicas.
    pub hedge: bool,
    /// Deadline as a multiple of the predicted batch makespan (the
    /// scheduler's max heat). Straggler completion estimates beyond it
    /// trigger hedged re-dispatch.
    pub hedge_deadline_factor: f64,
    /// Replay unrecoverable tasks on the host through the exact DPU kernel
    /// path (lossless). Off = graceful degradation: complete the query on
    /// the surviving probe set and account the loss.
    pub host_fallback: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_retries: 2,
            quarantine_after: 3,
            hedge: true,
            hedge_deadline_factor: 1.5,
            host_fallback: true,
        }
    }
}

impl RecoveryConfig {
    /// Validity check folded into [`EngineConfig::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.quarantine_after == 0 {
            return Err(ConfigError::BadRecovery("quarantine_after"));
        }
        if self.hedge_deadline_factor < 1.0 || self.hedge_deadline_factor.is_nan() {
            return Err(ConfigError::BadRecovery("hedge_deadline_factor"));
        }
        Ok(())
    }
}

/// Background-maintenance policy for the streaming mutable index
/// ([`DrimEngine::maintain`](crate::engine::DrimEngine::maintain)):
/// when tombstone-heavy lists are compacted, when overgrown slices are
/// split, and how many slice copies one maintenance step may migrate
/// between DPUs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceConfig {
    /// Compact a cluster once its tombstoned fraction reaches this value
    /// (tombstones / physical points, in `(0, 1]`). Compaction physically
    /// removes tombstoned points, order-preserving, so it never changes
    /// results — only reclaims MRAM and scan work.
    pub compact_tombstone_frac: f64,
    /// Split a slice once it grows past this multiple of the layout's
    /// split threshold `th1` (appends land in a cluster's tail slice, so
    /// unchecked growth would re-concentrate a hot cluster on one DPU).
    /// Must be at least 1.0.
    pub overgrown_factor: f64,
    /// Upper bound on slice copies migrated between DPUs per
    /// [`maintain`](crate::engine::DrimEngine::maintain) call. Each
    /// migration is a double-buffered copy priced by the link model and
    /// finalized with one epoch swap.
    pub max_migrations: usize,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            compact_tombstone_frac: 0.25,
            overgrown_factor: 2.0,
            max_migrations: 1,
        }
    }
}

impl MaintenanceConfig {
    /// Validity check folded into [`EngineConfig::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.compact_tombstone_frac > 0.0 && self.compact_tombstone_frac <= 1.0) {
            return Err(ConfigError::BadMaintenance("compact_tombstone_frac"));
        }
        if self.overgrown_factor < 1.0 || self.overgrown_factor.is_nan() {
            return Err(ConfigError::BadMaintenance("overgrown_factor"));
        }
        Ok(())
    }
}

/// Complete engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Index parameters.
    pub index: IndexConfig,
    /// Replace squarings with the SQT (multiplier-less conversion,
    /// Section 3.1). Off = native 32-cycle multiplies.
    pub sqt: bool,
    /// WRAM window of the 16-bit SQT, in table entries — a swept parameter
    /// of the DSE and the buffer planner (see
    /// `crate::wram::choose_sqt_window`). Inert in the 8-bit regime, where
    /// the full 256-entry table always fits.
    pub sqt_window: usize,
    /// Operand width on the DPUs.
    pub bits: DataBits,
    /// Place hot data in WRAM (buffer optimization, Fig. 12b). Off = all
    /// traffic at MRAM cost.
    pub wram_buffers: bool,
    /// Split oversized clusters into slices (Fig. 14a).
    pub partition: bool,
    /// Override the searched split threshold `th1` (points per slice).
    pub split_granularity: Option<usize>,
    /// Duplicate hot slices (Fig. 14b).
    pub duplication: bool,
    /// Cap on extra duplicate bytes per DPU (Fig. 14b sweep); `None` = fill
    /// available MRAM.
    pub dup_budget_bytes: Option<u64>,
    /// Allocation policy.
    pub allocation: AllocPolicy,
    /// Runtime scheduling policy.
    pub scheduling: SchedPolicy,
    /// `th3`: tasks pushing a DPU beyond `(1 + th3) x` mean heat are
    /// postponed to the next batch.
    pub th3: f64,
    /// Top-k lock policy (Section 6 "Lock pruning").
    pub lock_policy: LockPolicy,
    /// Tasklets per DPU.
    pub tasklets: usize,
    /// Queries per batch.
    pub batch: usize,
    /// In-batch dedup: bit-identical queries within a batch are computed
    /// once and their results scattered back. Lossless by the engine's
    /// per-query purity contract (results are independent of batch-mates),
    /// so the only observable difference is the skipped work.
    pub dedup: bool,
    /// Fault-recovery policy (active only when faults are injected).
    pub recovery: RecoveryConfig,
    /// Background-maintenance policy for streaming mutation (compaction,
    /// slice splitting, migration).
    pub maintenance: MaintenanceConfig,
    /// Rank (DIMM) topology: DPUs are grouped into this many equal ranks
    /// (`dpus_per_rank = ceil(ndpus / ranks)`), and the layout gains a
    /// cross-rank replication post-pass so every slice keeps a home on at
    /// least two distinct ranks when replicas exist — the property that
    /// makes a whole-rank fail-stop lossless. `None` = monolithic system
    /// (no post-pass; layouts stay bit-identical to earlier versions).
    pub ranks: Option<usize>,
}

impl EngineConfig {
    /// All optimizations on — the DRIM-ANN configuration.
    pub fn drim(index: IndexConfig) -> Self {
        EngineConfig {
            index,
            sqt: true,
            sqt_window: crate::sqt::DEFAULT_U16_WINDOW,
            bits: DataBits::B8,
            wram_buffers: true,
            partition: true,
            split_granularity: None,
            duplication: true,
            dup_budget_bytes: None,
            allocation: AllocPolicy::HeatBalanced,
            scheduling: SchedPolicy::Greedy,
            th3: 0.15,
            lock_policy: LockPolicy::Forwarding,
            tasklets: 16,
            batch: 256,
            dedup: true,
            recovery: RecoveryConfig::default(),
            maintenance: MaintenanceConfig::default(),
            ranks: None,
        }
    }

    /// Everything off — the naive port the paper's ablations compare
    /// against.
    pub fn naive(index: IndexConfig) -> Self {
        EngineConfig {
            index,
            sqt: false,
            sqt_window: crate::sqt::DEFAULT_U16_WINDOW,
            bits: DataBits::B8,
            wram_buffers: false,
            partition: false,
            split_granularity: None,
            duplication: false,
            dup_budget_bytes: None,
            allocation: AllocPolicy::RoundRobin,
            scheduling: SchedPolicy::Static,
            th3: f64::INFINITY,
            lock_policy: LockPolicy::LockAlways,
            tasklets: 16,
            batch: 256,
            dedup: false,
            recovery: RecoveryConfig::default(),
            maintenance: MaintenanceConfig::default(),
            ranks: None,
        }
    }

    /// Reject user-reachable misconfiguration with a typed error instead of
    /// letting it surface as a panic (division by zero, empty heaps, code
    /// overflow) deep inside the build.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.index.k == 0 {
            return Err(ConfigError::ZeroK);
        }
        if self.index.nlist == 0 {
            return Err(ConfigError::ZeroNlist);
        }
        if self.index.m == 0 {
            return Err(ConfigError::ZeroM);
        }
        if self.index.nprobe == 0 || self.index.nprobe > self.index.nlist {
            return Err(ConfigError::BadNprobe {
                nprobe: self.index.nprobe,
                nlist: self.index.nlist,
            });
        }
        if self.index.cb < 2 || self.index.cb > 65536 {
            return Err(ConfigError::BadCb(self.index.cb));
        }
        if self.batch == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        if self.tasklets == 0 {
            return Err(ConfigError::ZeroTasklets);
        }
        if self.th3.is_nan() || self.th3 < 0.0 {
            return Err(ConfigError::BadTh3(self.th3));
        }
        if self.sqt_window == 0 {
            return Err(ConfigError::ZeroSqtWindow);
        }
        if self.ranks == Some(0) {
            return Err(ConfigError::ZeroRanks);
        }
        self.recovery.validate()?;
        self.maintenance.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_5() {
        let c = IndexConfig::paper_default();
        assert_eq!(c.nlist, 16384);
        assert_eq!(c.nprobe, 96);
        assert_eq!(c.m, 16);
        assert_eq!(c.cb, 256);
        assert_eq!(c.k, 10);
    }

    #[test]
    fn mean_cluster_size_is_n_over_nlist() {
        let c = IndexConfig::paper_default();
        assert!((c.mean_cluster_size(100_000_000) - 6103.5).abs() < 0.1);
    }

    #[test]
    fn drim_config_enables_everything() {
        let cfg = EngineConfig::drim(IndexConfig::paper_default());
        assert!(cfg.sqt && cfg.wram_buffers && cfg.partition && cfg.duplication && cfg.dedup);
        assert_eq!(cfg.allocation, AllocPolicy::HeatBalanced);
        assert_eq!(cfg.scheduling, SchedPolicy::Greedy);
        assert_eq!(cfg.lock_policy, LockPolicy::Forwarding);
    }

    #[test]
    fn naive_config_disables_everything() {
        let cfg = EngineConfig::naive(IndexConfig::paper_default());
        assert!(!cfg.sqt && !cfg.wram_buffers && !cfg.partition && !cfg.duplication && !cfg.dedup);
        assert_eq!(cfg.allocation, AllocPolicy::RoundRobin);
        assert_eq!(cfg.scheduling, SchedPolicy::Static);
    }

    #[test]
    fn bits_bytes() {
        assert_eq!(DataBits::B8.bytes(), 1);
        assert_eq!(DataBits::B16.bytes(), 2);
    }

    #[test]
    fn validate_accepts_presets() {
        EngineConfig::drim(IndexConfig::paper_default())
            .validate()
            .unwrap();
        EngineConfig::naive(IndexConfig::paper_default())
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_rejects_misconfiguration() {
        let base = IndexConfig::paper_default();
        let with = |f: &dyn Fn(&mut EngineConfig)| {
            let mut c = EngineConfig::drim(base);
            f(&mut c);
            c.validate()
        };
        assert_eq!(with(&|c| c.index.k = 0), Err(ConfigError::ZeroK));
        assert_eq!(with(&|c| c.index.nlist = 0), Err(ConfigError::ZeroNlist));
        assert_eq!(with(&|c| c.index.m = 0), Err(ConfigError::ZeroM));
        assert_eq!(
            with(&|c| c.index.nprobe = c.index.nlist + 1),
            Err(ConfigError::BadNprobe {
                nprobe: base.nlist + 1,
                nlist: base.nlist
            })
        );
        assert_eq!(with(&|c| c.index.cb = 1), Err(ConfigError::BadCb(1)));
        assert_eq!(
            with(&|c| c.index.cb = 1 << 17),
            Err(ConfigError::BadCb(1 << 17))
        );
        assert_eq!(with(&|c| c.batch = 0), Err(ConfigError::ZeroBatch));
        assert_eq!(with(&|c| c.tasklets = 0), Err(ConfigError::ZeroTasklets));
        assert!(matches!(
            with(&|c| c.th3 = -0.5),
            Err(ConfigError::BadTh3(_))
        ));
        assert_eq!(with(&|c| c.sqt_window = 0), Err(ConfigError::ZeroSqtWindow));
        assert_eq!(
            with(&|c| c.recovery.quarantine_after = 0),
            Err(ConfigError::BadRecovery("quarantine_after"))
        );
        assert_eq!(
            with(&|c| c.recovery.hedge_deadline_factor = 0.5),
            Err(ConfigError::BadRecovery("hedge_deadline_factor"))
        );
        assert_eq!(with(&|c| c.ranks = Some(0)), Err(ConfigError::ZeroRanks));
        assert!(with(&|c| c.ranks = Some(4)).is_ok());
        assert_eq!(
            with(&|c| c.maintenance.compact_tombstone_frac = 0.0),
            Err(ConfigError::BadMaintenance("compact_tombstone_frac"))
        );
        assert_eq!(
            with(&|c| c.maintenance.compact_tombstone_frac = 1.5),
            Err(ConfigError::BadMaintenance("compact_tombstone_frac"))
        );
        assert_eq!(
            with(&|c| c.maintenance.overgrown_factor = 0.5),
            Err(ConfigError::BadMaintenance("overgrown_factor"))
        );
        assert!(with(&|c| c.maintenance.max_migrations = 0).is_ok());
    }

    #[test]
    fn config_errors_render() {
        let e = ConfigError::BadNprobe {
            nprobe: 5,
            nlist: 4,
        };
        assert!(e.to_string().contains("nprobe 5"));
        let f: ConfigError = upmem_sim::fault::FaultConfigError::BadRate.into();
        assert!(f.to_string().contains("fault"));
    }
}
