//! Engine configuration: the tunable index parameters of the paper's
//! Table 2 plus every optimization toggle the evaluation ablates.

use upmem_sim::tasklet::LockPolicy;

/// Quantization bit-width regime for residuals/codebooks on the DPUs.
///
/// Decides the squaring-LUT layout: 8-bit operands need a 256-entry SQT that
/// fits entirely in WRAM; 16-bit operands need a 64Ki-entry SQT of which only
/// a hot window is WRAM-resident (paper Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataBits {
    /// 8-bit integers (the paper's main regime: SIFT and quantized DEEP).
    #[default]
    B8,
    /// 16-bit integers.
    B16,
}

impl DataBits {
    /// Bytes per scalar.
    pub fn bytes(self) -> u64 {
        match self {
            DataBits::B8 => 1,
            DataBits::B16 => 2,
        }
    }
}

/// The tunable index parameters `(K, P, C, M, CB)` of paper Table 2.
///
/// `C` (mean cluster population) is controlled through `nlist`:
/// `C = N / nlist` for a corpus of `N` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// `K`: neighbors returned per query.
    pub k: usize,
    /// `P` (`nprobe`): clusters scanned per query.
    pub nprobe: usize,
    /// Number of coarse clusters (`C = N / nlist`).
    pub nlist: usize,
    /// `M`: PQ sub-quantizers.
    pub m: usize,
    /// `CB`: codebook entries per subspace.
    pub cb: usize,
}

impl IndexConfig {
    /// The configuration of the paper's Fig. 7(a): nlist=2^14, nprobe=96,
    /// M=16, CB=256, recall@10.
    pub fn paper_default() -> Self {
        IndexConfig {
            k: 10,
            nprobe: 96,
            nlist: 1 << 14,
            m: 16,
            cb: 256,
        }
    }

    /// Mean cluster population for a corpus of `n` vectors.
    pub fn mean_cluster_size(&self, n: u64) -> f64 {
        n as f64 / self.nlist as f64
    }
}

/// Cluster-slice allocation policy across DPUs (paper Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Slices assigned to DPUs in order, ignoring heat — the imbalanced
    /// baseline of Fig. 13.
    RoundRobin,
    /// Heat-balanced greedy allocation plus the co-location exchange pass
    /// (the paper's "mixed layout").
    #[default]
    HeatBalanced,
}

/// Runtime query-to-DPU scheduling policy (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Every task runs on its cluster's primary replica.
    Static,
    /// Greedy coldest-replica scheduling with `th3` postponement.
    #[default]
    Greedy,
}

/// Complete engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Index parameters.
    pub index: IndexConfig,
    /// Replace squarings with the SQT (multiplier-less conversion,
    /// Section 3.1). Off = native 32-cycle multiplies.
    pub sqt: bool,
    /// WRAM window of the 16-bit SQT, in table entries — a swept parameter
    /// of the DSE and the buffer planner (see
    /// `crate::wram::choose_sqt_window`). Inert in the 8-bit regime, where
    /// the full 256-entry table always fits.
    pub sqt_window: usize,
    /// Operand width on the DPUs.
    pub bits: DataBits,
    /// Place hot data in WRAM (buffer optimization, Fig. 12b). Off = all
    /// traffic at MRAM cost.
    pub wram_buffers: bool,
    /// Split oversized clusters into slices (Fig. 14a).
    pub partition: bool,
    /// Override the searched split threshold `th1` (points per slice).
    pub split_granularity: Option<usize>,
    /// Duplicate hot slices (Fig. 14b).
    pub duplication: bool,
    /// Cap on extra duplicate bytes per DPU (Fig. 14b sweep); `None` = fill
    /// available MRAM.
    pub dup_budget_bytes: Option<u64>,
    /// Allocation policy.
    pub allocation: AllocPolicy,
    /// Runtime scheduling policy.
    pub scheduling: SchedPolicy,
    /// `th3`: tasks pushing a DPU beyond `(1 + th3) x` mean heat are
    /// postponed to the next batch.
    pub th3: f64,
    /// Top-k lock policy (Section 6 "Lock pruning").
    pub lock_policy: LockPolicy,
    /// Tasklets per DPU.
    pub tasklets: usize,
    /// Queries per batch.
    pub batch: usize,
}

impl EngineConfig {
    /// All optimizations on — the DRIM-ANN configuration.
    pub fn drim(index: IndexConfig) -> Self {
        EngineConfig {
            index,
            sqt: true,
            sqt_window: crate::sqt::DEFAULT_U16_WINDOW,
            bits: DataBits::B8,
            wram_buffers: true,
            partition: true,
            split_granularity: None,
            duplication: true,
            dup_budget_bytes: None,
            allocation: AllocPolicy::HeatBalanced,
            scheduling: SchedPolicy::Greedy,
            th3: 0.15,
            lock_policy: LockPolicy::Forwarding,
            tasklets: 16,
            batch: 256,
        }
    }

    /// Everything off — the naive port the paper's ablations compare
    /// against.
    pub fn naive(index: IndexConfig) -> Self {
        EngineConfig {
            index,
            sqt: false,
            sqt_window: crate::sqt::DEFAULT_U16_WINDOW,
            bits: DataBits::B8,
            wram_buffers: false,
            partition: false,
            split_granularity: None,
            duplication: false,
            dup_budget_bytes: None,
            allocation: AllocPolicy::RoundRobin,
            scheduling: SchedPolicy::Static,
            th3: f64::INFINITY,
            lock_policy: LockPolicy::LockAlways,
            tasklets: 16,
            batch: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_5() {
        let c = IndexConfig::paper_default();
        assert_eq!(c.nlist, 16384);
        assert_eq!(c.nprobe, 96);
        assert_eq!(c.m, 16);
        assert_eq!(c.cb, 256);
        assert_eq!(c.k, 10);
    }

    #[test]
    fn mean_cluster_size_is_n_over_nlist() {
        let c = IndexConfig::paper_default();
        assert!((c.mean_cluster_size(100_000_000) - 6103.5).abs() < 0.1);
    }

    #[test]
    fn drim_config_enables_everything() {
        let cfg = EngineConfig::drim(IndexConfig::paper_default());
        assert!(cfg.sqt && cfg.wram_buffers && cfg.partition && cfg.duplication);
        assert_eq!(cfg.allocation, AllocPolicy::HeatBalanced);
        assert_eq!(cfg.scheduling, SchedPolicy::Greedy);
        assert_eq!(cfg.lock_policy, LockPolicy::Forwarding);
    }

    #[test]
    fn naive_config_disables_everything() {
        let cfg = EngineConfig::naive(IndexConfig::paper_default());
        assert!(!cfg.sqt && !cfg.wram_buffers && !cfg.partition && !cfg.duplication);
        assert_eq!(cfg.allocation, AllocPolicy::RoundRobin);
        assert_eq!(cfg.scheduling, SchedPolicy::Static);
    }

    #[test]
    fn bits_bytes() {
        assert_eq!(DataBits::B8.bytes(), 1);
        assert_eq!(DataBits::B16.bytes(), 2);
    }
}
