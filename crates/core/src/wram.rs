//! WRAM buffer planning: which data classes live in the 64 KiB scratchpad.
//!
//! "As the capacity of WRAM buffer is only 0.1 % of PIM memory, only a few
//! data can be placed on it. To make the best use of it, we estimate the
//! access times of each kind of data ... by the coefficient of I/O in
//! Equation 1-11. The heat of each kind of data is represented as the
//! average access times per bit, and the hottest data are placed on WRAM"
//! (paper Section 3.2). This module is that greedy knapsack.

use crate::perf_model::WorkloadShape;
use crate::sqt::Sqt;

/// A candidate data class for WRAM residency.
#[derive(Debug, Clone, PartialEq)]
pub struct WramCandidate {
    /// Class name (`"sqt"`, `"lut"`, `"codebook"`, ...).
    pub name: &'static str,
    /// Bytes the class occupies per DPU.
    pub bytes: u64,
    /// Expected accesses per batch per DPU (from the I/O model).
    pub accesses: f64,
}

impl WramCandidate {
    /// Heat = accesses per byte — the greedy key.
    pub fn heat(&self) -> f64 {
        if self.bytes == 0 {
            f64::INFINITY
        } else {
            self.accesses / self.bytes as f64
        }
    }
}

/// The outcome: which classes won WRAM residency.
#[derive(Debug, Clone, Default)]
pub struct WramPlacement {
    resident: std::collections::BTreeMap<&'static str, u64>,
    /// Bytes left unallocated.
    pub free_bytes: u64,
}

impl WramPlacement {
    /// Whether the named class is WRAM-resident.
    pub fn is_resident(&self, name: &str) -> bool {
        self.resident.contains_key(name)
    }

    /// Bytes held by the named class (0 if not resident).
    pub fn bytes(&self, name: &str) -> u64 {
        self.resident.get(name).copied().unwrap_or(0)
    }

    /// Total resident bytes.
    pub fn used(&self) -> u64 {
        self.resident.values().sum()
    }

    /// Resident class names in name order.
    pub fn residents(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.resident.keys().copied()
    }

    /// Nothing resident (the Fig. 12b "without WRAM" baseline).
    pub fn none() -> Self {
        WramPlacement::default()
    }
}

/// Greedy placement: hottest class (accesses/byte) first, while it fits.
///
/// `capacity` should already exclude tasklet stacks and kernel locals.
pub fn plan(candidates: &[WramCandidate], capacity: u64) -> WramPlacement {
    let mut order: Vec<&WramCandidate> = candidates.iter().collect();
    order.sort_by(|a, b| b.heat().partial_cmp(&a.heat()).unwrap());
    let mut placement = WramPlacement::default();
    let mut free = capacity;
    for c in order {
        if c.bytes <= free {
            free -= c.bytes;
            placement.resident.insert(c.name, c.bytes);
        }
    }
    placement.free_bytes = free;
    placement
}

/// The standard candidate list for a DRIM-ANN DPU, with access counts from
/// the performance model's I/O coefficients (per batch, per DPU).
///
/// `sqt_bytes` comes from [`crate::sqt::Sqt::wram_bytes`];
/// `local_clusters` is how many clusters the DPU hosts (for centroid
/// metadata); `ndpus` normalizes the global model counts to one DPU.
pub fn standard_candidates(
    shape: &WorkloadShape,
    sqt_bytes: u64,
    local_clusters: usize,
    ndpus: usize,
) -> Vec<WramCandidate> {
    let per_dpu = 1.0 / ndpus.max(1) as f64;
    let dsub = (shape.d / shape.m).ceil().max(1.0);
    vec![
        // SQT: hit once per multiply-replaced element op in LC
        WramCandidate {
            name: "sqt",
            bytes: sqt_bytes,
            accesses: shape.q * shape.p * shape.cb * shape.d * per_dpu,
        },
        // distance LUT: one gather per (point, subquantizer) in DC, plus
        // CB x M writes in LC
        WramCandidate {
            name: "lut",
            bytes: (shape.m * shape.cb * shape.bits.b_l) as u64,
            accesses: (shape.q * shape.p * (shape.c * shape.m + shape.cb * shape.m)) * per_dpu,
        },
        // PQ codebooks: streamed once per (query, cluster) in LC
        WramCandidate {
            name: "codebook",
            bytes: (shape.m * shape.cb * dsub * shape.bits.b_cb) as u64,
            accesses: shape.q * shape.p * shape.cb * shape.d * per_dpu,
        },
        // residual vector: read per codebook entry in LC
        WramCandidate {
            name: "residual",
            bytes: (shape.d * shape.bits.b_q) as u64,
            accesses: shape.q * shape.p * shape.cb * shape.d * per_dpu,
        },
        // top-k queue: log K updates per candidate in TS
        WramCandidate {
            name: "topk",
            bytes: (shape.k * (shape.bits.b_l + shape.bits.b_a)) as u64,
            accesses: shape.q * shape.p * shape.c * shape.k.log2().max(1.0) * per_dpu,
        },
        // slice metadata: one lookup per scheduled task
        WramCandidate {
            name: "slice_meta",
            bytes: local_clusters as u64 * crate::layout::partition::SLICE_META_BYTES,
            accesses: shape.q * shape.p * per_dpu,
        },
    ]
}

/// Co-optimize the 16-bit SQT WRAM window with the buffer planner: among
/// `windows` (candidate entry counts, any order), pick the **largest**
/// window whose greedy placement still
///
/// 1. keeps the SQT itself WRAM-resident, and
/// 2. keeps every *other* class resident that the smallest candidate's
///    placement keeps resident — growing the squaring table must never
///    evict a hotter buffer to make room.
///
/// A bigger window converts MRAM spill lookups (a full DMA burst each)
/// into 1-cycle-class WRAM hits, so under those two constraints larger is
/// strictly better. Falls back to the smallest candidate when nothing
/// satisfies them (e.g. a capacity so small the SQT never fits — the
/// engine then runs with the window spilled, exactly as before).
///
/// This is the DSE's window-sweep kernel: `dse::optimize` calls it with
/// the winning index configuration's [`WorkloadShape`] and the
/// `ParamSpace::sqt_window` candidates, and records the choice in
/// `DseResult::best_sqt_window`. The no-eviction guarantee holds for the
/// `(capacity, local_clusters, ndpus)` this function is given; a caller
/// planning against different layout facts later (the engine knows its
/// real slice census only after `LayoutPlan::build`) re-runs the greedy
/// [`plan`] there, where an over-estimated window degrades to an MRAM
/// spill — it can never displace a hotter class retroactively.
pub fn choose_sqt_window(
    shape: &WorkloadShape,
    windows: &[usize],
    capacity: u64,
    local_clusters: usize,
    ndpus: usize,
) -> usize {
    assert!(!windows.is_empty(), "no SQT window candidates");
    let mut sorted: Vec<usize> = windows.to_vec();
    sorted.sort_unstable();
    let smallest = sorted[0];

    let placement_for = |window: usize| {
        let bytes = Sqt::for_u16(window).wram_bytes();
        plan(
            &standard_candidates(shape, bytes, local_clusters, ndpus),
            capacity,
        )
    };
    let baseline = placement_for(smallest);
    let baseline_others: Vec<&'static str> = baseline.residents().filter(|&n| n != "sqt").collect();

    for &window in sorted.iter().rev() {
        let p = placement_for(window);
        if p.is_resident("sqt") && baseline_others.iter().all(|n| p.is_resident(n)) {
            return window;
        }
    }
    smallest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::perf_model::BitWidths;

    fn shape() -> WorkloadShape {
        WorkloadShape::new(
            1_000_000,
            256,
            128,
            &IndexConfig {
                k: 10,
                nprobe: 32,
                nlist: 1024,
                m: 16,
                cb: 256,
            },
            BitWidths::u8_regime(),
        )
    }

    #[test]
    fn greedy_prefers_hotter_classes() {
        let cands = vec![
            WramCandidate {
                name: "hot",
                bytes: 100,
                accesses: 1e9,
            },
            WramCandidate {
                name: "cold",
                bytes: 100,
                accesses: 1.0,
            },
        ];
        let p = plan(&cands, 100);
        assert!(p.is_resident("hot"));
        assert!(!p.is_resident("cold"));
        assert_eq!(p.free_bytes, 0);
    }

    #[test]
    fn skips_too_large_but_fills_smaller() {
        let cands = vec![
            WramCandidate {
                name: "huge_hot",
                bytes: 1000,
                accesses: 1e9,
            },
            WramCandidate {
                name: "small_warm",
                bytes: 50,
                accesses: 1e3,
            },
        ];
        let p = plan(&cands, 100);
        assert!(!p.is_resident("huge_hot"));
        assert!(p.is_resident("small_warm"));
        assert_eq!(p.used(), 50);
    }

    #[test]
    fn standard_candidates_fit_typical_wram() {
        let cands = standard_candidates(&shape(), 1024, 64, 64);
        let p = plan(&cands, 48 << 10); // 64 KiB minus tasklet stacks
                                        // the paper's hot set: SQT, LUT, residual and top-k all make it
        for name in ["sqt", "lut", "residual", "topk"] {
            assert!(p.is_resident(name), "{name} should be WRAM-resident");
        }
    }

    #[test]
    fn sqt_and_residual_are_hottest_per_byte() {
        let cands = standard_candidates(&shape(), 1024, 64, 64);
        let by_name = |n: &str| cands.iter().find(|c| c.name == n).unwrap().heat();
        assert!(by_name("sqt") > by_name("codebook"));
        assert!(by_name("residual") > by_name("codebook"));
    }

    #[test]
    fn window_sweep_prefers_largest_fitting_window() {
        // plenty of capacity: every candidate keeps the whole hot set
        // resident, so the sweep lands on the largest window
        let windows = [1usize << 10, 2 << 10, 4 << 10, 8 << 10];
        let w = choose_sqt_window(&shape(), &windows, 128 << 10, 64, 64);
        assert_eq!(w, 8 << 10);
        // at the real 48 KiB budget the 32 KiB window would evict a
        // smaller-window co-resident, so the sweep must not pick it
        let w48 = choose_sqt_window(&shape(), &windows, 48 << 10, 64, 64);
        assert!(w48 < 8 << 10, "48 KiB budget chose {w48}");
        // constraint check: the chosen window's placement keeps every
        // class the smallest candidate's placement keeps
        let smallest = plan(
            &standard_candidates(&shape(), Sqt::for_u16(1 << 10).wram_bytes(), 64, 64),
            48 << 10,
        );
        let chosen = plan(
            &standard_candidates(&shape(), Sqt::for_u16(w48).wram_bytes(), 64, 64),
            48 << 10,
        );
        for name in smallest.residents() {
            assert!(chosen.is_resident(name), "{name} evicted by the sweep");
        }
    }

    #[test]
    fn window_sweep_backs_off_when_capacity_shrinks() {
        // 8Ki entries = 32 KiB cannot fit a 32 KiB-ish budget next to the
        // rest of the hot set; the sweep must back off to a window that
        // leaves the smallest candidate's co-residents in place
        let windows = [1usize << 10, 2 << 10, 4 << 10, 8 << 10];
        let tight = choose_sqt_window(&shape(), &windows, 34 << 10, 64, 64);
        assert!(tight < 8 << 10, "window {tight} should have backed off");
        // and the chosen placement really keeps the SQT resident
        let bytes = Sqt::for_u16(tight).wram_bytes();
        let p = plan(&standard_candidates(&shape(), bytes, 64, 64), 34 << 10);
        assert!(p.is_resident("sqt"));
    }

    #[test]
    fn window_sweep_falls_back_to_smallest_when_nothing_fits() {
        let windows = [4usize << 10, 8 << 10];
        // capacity below even the smallest window's bytes
        let w = choose_sqt_window(&shape(), &windows, 1 << 10, 64, 64);
        assert_eq!(w, 4 << 10);
    }

    #[test]
    fn none_placement_has_no_residents() {
        let p = WramPlacement::none();
        assert!(!p.is_resident("sqt"));
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn zero_byte_candidate_is_free_to_place() {
        let cands = vec![WramCandidate {
            name: "ghost",
            bytes: 0,
            accesses: 10.0,
        }];
        let p = plan(&cands, 10);
        assert!(p.is_resident("ghost"));
        assert_eq!(p.free_bytes, 10);
    }
}
