//! Full-scale trace mode: run the *real* layout, scheduling and costing
//! machinery against statistical workload shapes — 100M to 1B points, 2,543
//! DPUs — without materializing a single vector.
//!
//! Rationale (DESIGN.md): the figures that depend on load distribution and
//! phase balance (paper Figs. 7–11, 13–15, Table 3) are functions of
//! *cluster sizes*, *query heat* and *per-operation costs*, none of which
//! require vector payloads. Trace mode samples cluster sizes from a Zipf
//! partition (k-means over natural data is uneven), samples each query's
//! probed clusters from a Zipf heat law, and charges the DPU meters through
//! the same closed-form `charge` functions the functional kernels use —
//! unit tests in [`crate::kernels`] pin the two to produce identical totals.

use crate::config::{ConfigError, EngineConfig, SchedPolicy};
use crate::kernels::{cl, dc, lc, rc, ts, KernelCtx};
use crate::layout::{ClusterInfo, LayoutPlan};
use crate::perf_model::{BitWidths, WorkloadShape};
use crate::recovery::DpuHealth;
use crate::report::{BatchReport, FaultStats};
use crate::sched::{self, Policy, Task};
use crate::sqt::Sqt;
use crate::wram::{plan as wram_plan, WramPlacement};
use datasets::zipf::{zipf_partition, Discrete};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use upmem_sim::fault::{FaultConfig, FaultInjector, FaultOutcome};
use upmem_sim::meter::{DpuMeter, Phase};
use upmem_sim::proc::ProcModel;
use upmem_sim::system::PimSystem;
use upmem_sim::tasklet::{LockPolicy, LockStats};
use upmem_sim::PimArch;

/// Statistical description of a full-scale workload.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Workload name (reports).
    pub name: String,
    /// Total indexed points (e.g. `1e8` for SIFT100M).
    pub n_points: u64,
    /// Vector dimension.
    pub dim: usize,
    /// Queries per batch.
    pub batch: usize,
    /// Zipf exponent of cluster sizes (k-means on natural data: ~0.35).
    pub cluster_size_zipf: f64,
    /// Zipf exponent of query heat over clusters (~0.9 in-distribution;
    /// 1.2+ for hot-topic traffic).
    pub heat_zipf: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TraceSpec {
    /// Trace stand-in for a catalogued dataset at full paper scale.
    pub fn for_dataset(d: &datasets::DatasetDescriptor, batch: usize) -> Self {
        TraceSpec {
            name: d.name.to_string(),
            n_points: d.n_full,
            dim: d.dim,
            batch,
            cluster_size_zipf: 0.35,
            heat_zipf: d.zipf_s,
            seed: 0x7ACE,
        }
    }
}

/// A ready-to-run full-scale simulation.
pub struct TraceRunner {
    /// Engine configuration in force.
    pub cfg: EngineConfig,
    /// The workload description.
    pub spec: TraceSpec,
    /// Layout plan over the DPUs.
    pub layout: LayoutPlan,
    /// Simulated system.
    pub system: PimSystem,
    /// WRAM residency.
    pub placement: WramPlacement,
    /// Host model (CL phase).
    pub host: ProcModel,
    /// Closed-form workload shape.
    pub shape: WorkloadShape,
    /// Probe distribution over clusters (size-proportional x Zipf boost).
    probe_sampler: Discrete,
    /// PQ sub-vector dimension.
    dsub: usize,
}

impl TraceRunner {
    /// Build the runner: sample cluster sizes, profile heat, lay out, plan
    /// WRAM.
    pub fn build(spec: TraceSpec, cfg: EngineConfig, arch: PimArch, ndpus: usize) -> TraceRunner {
        let nlist = cfg.index.nlist;
        let mut sizes = zipf_partition(spec.n_points as usize, nlist, spec.cluster_size_zipf);
        // k-means cluster ids are not size-ordered; shuffle so id-based
        // placements (round-robin baseline) see realistic random stacking
        {
            let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x51235);
            for i in (1..sizes.len()).rev() {
                let j = rng.gen_range(0..=i);
                sizes.swap(i, j);
            }
        }

        // Probe probability of a cluster = sqrt of its point mass
        // (in-distribution queries land in populated regions — this drives
        // the paper's imbalance) times a Zipf "topic heat" boost over a
        // seeded shuffle (hot topics uncorrelated with size). heat_zipf = 0
        // degenerates to pure sqrt-size-proportional probing.
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut rank_to_cluster: Vec<u32> = (0..nlist as u32).collect();
        for i in (1..rank_to_cluster.len()).rev() {
            let j = rng.gen_range(0..=i);
            rank_to_cluster.swap(i, j);
        }
        let boost = datasets::zipf::zipf_weights(nlist, spec.heat_zipf);
        let mut probe_weights = vec![0.0f64; nlist];
        for (rank, &c) in rank_to_cluster.iter().enumerate() {
            // probe mass grows sublinearly (sqrt) with cluster size: queries
            // land in populated regions, but nearest-centroid geometry does
            // not reward mass linearly — calibrated against the paper's
            // 4.8-6.2x naive-imbalance band (Fig. 13)
            probe_weights[c as usize] =
                (sizes[c as usize].max(1) as f64).sqrt() * boost[rank] * nlist as f64;
        }
        let total_w: f64 = probe_weights.iter().sum();
        let probe_sampler = Discrete::new(&probe_weights);

        // expected probes per query per cluster -> heat (scanned points)
        let clusters: Vec<ClusterInfo> = (0..nlist)
            .map(|c| {
                let freq = probe_weights[c] / total_w * cfg.index.nprobe as f64;
                ClusterInfo {
                    id: c as u32,
                    points: sizes[c],
                    heat: freq * sizes[c].max(1) as f64,
                }
            })
            .collect();

        let code_bytes = if cfg.index.cb <= 256 { 1 } else { 2 };
        let bytes_per_point = (cfg.index.m * code_bytes + 4) as u64;
        let dsub = spec.dim.div_ceil(cfg.index.m);
        let codebook_bytes = (cfg.index.m * cfg.index.cb * dsub) as u64;
        let mram_budget = arch.mram_bytes.saturating_sub(codebook_bytes);
        let layout = LayoutPlan::build(&clusters, ndpus, &cfg, bytes_per_point, mram_budget);

        let mut system = PimSystem::new(arch.clone(), ndpus);
        system.tasklets = cfg.tasklets;

        let shape = WorkloadShape::new(
            spec.n_points,
            spec.batch,
            spec.dim,
            &cfg.index,
            BitWidths::u8_regime(),
        );
        let placement = if cfg.wram_buffers {
            let sqt_bytes = Sqt::for_bits_windowed(cfg.bits, cfg.sqt_window).wram_bytes();
            let local = layout.dpu_slices.first().map(|s| s.len()).unwrap_or(0);
            let capacity = arch.wram_bytes.saturating_sub(cfg.tasklets as u64 * 1024);
            wram_plan(
                &crate::wram::standard_candidates(&shape, sqt_bytes, local, ndpus),
                capacity,
            )
        } else {
            WramPlacement::none()
        };

        TraceRunner {
            cfg,
            spec,
            layout,
            system,
            placement,
            host: upmem_sim::platform::procs::xeon_silver_4216(),
            shape,
            probe_sampler,
            dsub,
        }
    }

    /// Sample the probed clusters of one batch of queries.
    pub fn sample_probes(&self, batch_seed: u64) -> Vec<Vec<u32>> {
        let nprobe = self.cfg.index.nprobe.min(self.cfg.index.nlist);
        let mut rng = StdRng::seed_from_u64(self.spec.seed ^ batch_seed.wrapping_mul(0x9E37));
        (0..self.spec.batch)
            .map(|_| {
                let mut probed = Vec::with_capacity(nprobe);
                let mut seen = std::collections::HashSet::with_capacity(nprobe * 2);
                while probed.len() < nprobe {
                    let c = self.probe_sampler.sample(&mut rng) as u32;
                    if seen.insert(c) {
                        probed.push(c);
                    }
                }
                probed
            })
            .collect()
    }

    /// Attach a fault injector: subsequent batches run through the same
    /// recovery policy as the functional engine, in charge-only form
    /// (faulted work re-charged on replicas, stragglers slowed or hedged,
    /// unplaceable work replayed on the host or dropped with the loss
    /// accounted). The batch's transient draws key on `batch_seed`.
    pub fn inject_faults(&mut self, cfg: FaultConfig) -> Result<(), ConfigError> {
        self.system.fault = Some(FaultInjector::new(cfg)?);
        Ok(())
    }

    /// Detach the fault injector.
    pub fn clear_faults(&mut self) {
        self.system.fault = None;
    }

    /// Scheduler heat unit (same formula as the functional engine).
    fn task_cost(&self, slice_len: usize) -> f64 {
        sched::task_cost_s(
            slice_len,
            self.cfg.index.m,
            self.cfg.index.cb,
            self.dsub,
            self.cfg.index.k,
            self.cfg.sqt,
            &self.system.arch.costs,
            self.system.arch.freq_hz,
        )
    }

    /// Execute one batch; `batch_seed` varies the query sample.
    pub fn run_batch(&mut self, batch_seed: u64) -> BatchReport {
        self.system.reset_meters();
        let probes = self.sample_probes(batch_seed);

        // CL on host (blocked-GEMM model, same as the functional engine)
        let host_s = cl::host_cl_time(
            self.spec.batch,
            self.cfg.index.nlist,
            &self.shape,
            &self.host,
        );

        // schedule (routing around the injector's dead set when one is
        // armed; `banned = None` keeps the arithmetic bit-identical)
        let ndpus = self.system.len();
        let tasks = sched::expand_tasks(&probes, &self.layout, |len| self.task_cost(len));
        let policy = match self.cfg.scheduling {
            SchedPolicy::Static => Policy::Static,
            SchedPolicy::Greedy => Policy::Greedy { th3: self.cfg.th3 },
        };
        let injector = self.system.fault.clone().filter(|f| !f.is_inert());
        let mut health = injector
            .as_ref()
            .map(|inj| DpuHealth::from_injector_at(inj, ndpus, batch_seed));
        let banned = health.as_ref().map(|h| h.banned());
        let mut plan =
            sched::schedule_filtered(&tasks, &self.layout, ndpus, policy, None, banned.as_deref());
        let postponed_count = plan.postponed.len();
        let mut fallback: Vec<Task> = std::mem::take(&mut plan.unplaceable);
        while !plan.postponed.is_empty() {
            let extra = sched::schedule_filtered(
                &plan.postponed,
                &self.layout,
                ndpus,
                Policy::Greedy { th3: f64::INFINITY },
                Some(&plan.heat),
                banned.as_deref(),
            );
            for (d, ts_) in extra.per_dpu.into_iter().enumerate() {
                plan.per_dpu[d].extend(ts_);
            }
            plan.heat = extra.heat;
            plan.postponed = extra.postponed;
            fallback.extend(extra.unplaceable);
        }

        // charge DPUs (parallel)
        let k = self.cfg.index.k;
        let m = self.cfg.index.m;
        let cb = self.cfg.index.cb;
        let dsub = self.dsub;
        let d = self.spec.dim as u64;
        let costs = self.system.arch.costs.clone();
        let ctx = KernelCtx {
            costs: &costs,
            // random accesses pay the burst x the PrIM-style derate
            dma_burst: self.system.arch.dma_burst_bytes * self.system.arch.mram_random_penalty,
            bits: self.cfg.bits,
            placement: &self.placement,
        };
        let square = if self.cfg.sqt {
            let resident = self.placement.is_resident("sqt");
            lc::SquareCost::SqtLookup {
                wram_hit_rate: match (self.cfg.bits, resident) {
                    (_, false) => 0.0, // spilled entirely (Fig. 12b ablation)
                    (crate::config::DataBits::B8, true) => 1.0,
                    // 16-bit: the WRAM window absorbs most lookups because
                    // residuals are small (paper Section 3.1)
                    (crate::config::DataBits::B16, true) => 0.9,
                },
            }
        } else {
            lc::SquareCost::Multiply
        };
        let lock_policy = self.cfg.lock_policy;
        let layout = &self.layout;

        // Per-DPU charge function (unchanged arithmetic) — reused by the
        // retry waves and the host fallback replay.
        let charge_tasks = |tasks: &[Task]| -> (DpuMeter, LockStats, u64, u64) {
            let mut meter = DpuMeter::new();
            let mut lock = LockStats::default();
            let mut push_bytes = 0u64;
            let mut gather_bytes = 0u64;

            // group by (query, cluster) exactly like the engine
            let mut groups: std::collections::BTreeMap<(u32, u32), Vec<usize>> = Default::default();
            for t in tasks {
                let cluster = layout.slices[t.slice].cluster;
                groups.entry((t.query, cluster)).or_default().push(t.slice);
            }
            let mut queries_seen = std::collections::HashSet::new();
            for ((q, _cluster), slices) in groups {
                queries_seen.insert(q);
                push_bytes += d * 4 + 8 * slices.len() as u64;
                rc::charge(&ctx, meter.phase_mut(Phase::Rc), d);
                lc::charge(&ctx, meter.phase_mut(Phase::Lc), m, cb, dsub, square);
                for &si in &slices {
                    let n = layout.slices[si].len as u64;
                    dc::charge(&ctx, meter.phase_mut(Phase::Dc), n, m, cb);
                    let (locked, retained) = match lock_policy {
                        LockPolicy::LockAlways => (n, ts::expected_updates(n, k)),
                        LockPolicy::Forwarding => {
                            let u = ts::expected_updates(n, k);
                            (u, u)
                        }
                    };
                    ts::charge(
                        &ctx,
                        meter.phase_mut(Phase::Ts),
                        n,
                        k,
                        lock_policy,
                        locked,
                        retained,
                    );
                    match lock_policy {
                        LockPolicy::LockAlways => lock.locked_updates += n,
                        LockPolicy::Forwarding => {
                            let u = ts::expected_updates(n, k);
                            lock.locked_updates += u;
                            lock.pruned += n - u.min(n);
                        }
                    }
                }
            }
            gather_bytes += queries_seen.len() as u64 * k as u64 * 8;
            (meter, lock, push_bytes, gather_bytes)
        };

        // Dispatch waves: a single all-healthy wave without an injector
        // (sums are integer merges, so this path is bit-identical to the
        // pre-fault code), the engine's recovery policy with one.
        let rec = self.cfg.recovery;
        let mut stats = FaultStats::default();
        if injector.is_some() {
            stats.scheduled_points = tasks
                .iter()
                .map(|t| layout.slices[t.slice].len as u64)
                .sum();
        }
        let max_heat = plan.heat.iter().cloned().fold(0.0, f64::max);
        let deadline = if max_heat > 0.0 {
            rec.hedge_deadline_factor * max_heat
        } else {
            f64::INFINITY
        };
        let mut heat = plan.heat.clone();
        let mut hedged = vec![false; ndpus];
        let mut lock = LockStats::default();
        let mut push_bytes = 0u64;
        let mut gather_bytes = 0u64;
        let mut extra_host_s = 0.0f64;
        let mut wave: Vec<(usize, Vec<Task>)> = plan
            .per_dpu
            .into_iter()
            .enumerate()
            .filter(|(_, t)| !t.is_empty())
            .collect();
        let mut attempt: u32 = 0;

        loop {
            let charged: Vec<(DpuMeter, LockStats, u64, u64)> =
                wave.par_iter().map(|(_, ts_)| charge_tasks(ts_)).collect();

            let mut to_recover: Vec<Task> = Vec::new();
            for ((dd, wtasks), (meter, l, p, g)) in wave.iter().zip(charged) {
                let dd = *dd;
                let outcome = injector
                    .as_ref()
                    .map(|i| i.outcome(dd, batch_seed, attempt))
                    .unwrap_or(FaultOutcome::Healthy);
                match outcome {
                    FaultOutcome::Healthy => {
                        if let Some(h) = health.as_mut() {
                            h.record_healthy(dd);
                        }
                    }
                    FaultOutcome::FailStop => {
                        // defensive: dead DPUs are pre-banned by the scan
                        health
                            .as_mut()
                            .expect("injector present")
                            .record_fail_stop(dd);
                        stats.fail_stop_events += 1;
                        stats.retried_tasks += wtasks.len();
                        push_bytes += p;
                        to_recover.extend_from_slice(wtasks);
                        continue;
                    }
                    FaultOutcome::Straggler(f) => {
                        stats.stragglers += 1;
                        health
                            .as_mut()
                            .expect("injector present")
                            .record_transient(dd, rec.quarantine_after);
                        let wave_s = meter.time(&self.system.arch, self.system.tasklets);
                        self.system.set_dpu_slowdown(dd, f);
                        if rec.hedge && wave_s * f > deadline {
                            self.system.cap_dpu_time(dd, deadline);
                            hedged[dd] = true;
                            stats.hedged_tasks += wtasks.len();
                            self.system.dpus[dd].meter.merge(&meter);
                            push_bytes += p;
                            to_recover.extend_from_slice(wtasks);
                            continue;
                        }
                    }
                    FaultOutcome::Corrupt => {
                        stats.corruptions += 1;
                        stats.retried_tasks += wtasks.len();
                        health
                            .as_mut()
                            .expect("injector present")
                            .record_transient(dd, rec.quarantine_after);
                        self.system.dpus[dd].meter.merge(&meter);
                        push_bytes += p;
                        gather_bytes += g;
                        to_recover.extend_from_slice(wtasks);
                        continue;
                    }
                }
                // full accept
                self.system.dpus[dd].meter.merge(&meter);
                lock.locked_updates += l.locked_updates;
                lock.pruned += l.pruned;
                push_bytes += p;
                gather_bytes += g;
            }

            if to_recover.is_empty() {
                break;
            }
            attempt += 1;
            if attempt as usize >= rec.max_retries {
                fallback.extend_from_slice(&to_recover);
                break;
            }
            let mut banned_now = health.as_ref().expect("injector present").banned();
            for (b, &hd) in banned_now.iter_mut().zip(&hedged) {
                *b |= hd;
            }
            let rplan = sched::schedule_filtered(
                &to_recover,
                layout,
                ndpus,
                Policy::Greedy { th3: f64::INFINITY },
                Some(&heat),
                Some(&banned_now),
            );
            extra_host_s += self.host.time(
                32.0 * to_recover.len() as f64,
                16.0 * to_recover.len() as f64,
            );
            heat = rplan.heat;
            fallback.extend(rplan.unplaceable);
            wave = rplan
                .per_dpu
                .into_iter()
                .enumerate()
                .filter(|(_, t)| !t.is_empty())
                .collect();
            if wave.is_empty() {
                break;
            }
        }

        // escalation: host-side replay (charged through the host's
        // ProcModel), or graceful degradation with the loss accounted
        if !fallback.is_empty() {
            if rec.host_fallback {
                stats.host_fallback_tasks += fallback.len();
                let (meter, _, _, _) = charge_tasks(&fallback);
                let total = meter.total();
                extra_host_s += self
                    .host
                    .time(total.cycles as f64, total.total_bytes() as f64);
            } else {
                stats.dropped_tasks += fallback.len();
                let mut degraded: std::collections::BTreeSet<u32> = Default::default();
                for t in &fallback {
                    stats.dropped_points += layout.slices[t.slice].len as u64;
                    degraded.insert(t.query);
                }
                stats.degraded_queries += degraded.len();
            }
        }
        if let Some(h) = &health {
            stats.dead_dpus = h.dead_count();
            stats.quarantined_dpus = h.quarantined_count();
            if let Some(inj) = &injector {
                stats.dead_ranks = inj.dead_ranks_at(ndpus, batch_seed);
            }
        }

        let timing = self
            .system
            .batch_timing(host_s + extra_host_s, push_bytes, gather_bytes);
        let energy = self.system.batch_energy(&timing, self.host.power_w);

        BatchReport::new(self.spec.batch, timing, energy, postponed_count, lock, 1.0)
            .with_fault_stats(stats)
    }

    /// Run `batches` batches and return the mean QPS (steady-state estimate).
    pub fn mean_qps(&mut self, batches: usize) -> f64 {
        let mut total_q = 0usize;
        let mut total_t = 0.0f64;
        for b in 0..batches {
            let rep = self.run_batch(b as u64 + 1);
            total_q += rep.queries;
            total_t += rep.timing.total_s();
        }
        total_q as f64 / total_t.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;

    fn spec(n: u64) -> TraceSpec {
        TraceSpec {
            name: "trace-test".into(),
            n_points: n,
            dim: 32,
            batch: 64,
            cluster_size_zipf: 0.35,
            heat_zipf: 1.0,
            seed: 42,
        }
    }

    fn cfg() -> EngineConfig {
        let mut c = EngineConfig::drim(IndexConfig {
            k: 10,
            nprobe: 8,
            nlist: 256,
            m: 8,
            cb: 64,
        });
        c.batch = 64;
        c
    }

    #[test]
    fn trace_runs_at_million_scale() {
        let mut runner = TraceRunner::build(spec(1_000_000), cfg(), PimArch::upmem_sc25(), 64);
        let rep = runner.run_batch(1);
        assert!(rep.qps > 0.0);
        assert!(rep.timing.pim_s() > 0.0);
        assert_eq!(rep.queries, 64);
    }

    #[test]
    fn probes_are_distinct_and_in_range() {
        let runner = TraceRunner::build(spec(100_000), cfg(), PimArch::upmem_sc25(), 16);
        let probes = runner.sample_probes(7);
        assert_eq!(probes.len(), 64);
        for p in &probes {
            assert_eq!(p.len(), 8);
            let set: std::collections::HashSet<_> = p.iter().collect();
            assert_eq!(set.len(), p.len());
            assert!(p.iter().all(|&c| (c as usize) < 256));
        }
    }

    #[test]
    fn skewed_heat_without_balancing_is_imbalanced() {
        let mut hot = spec(1_000_000);
        hot.heat_zipf = 1.4;
        let naive = EngineConfig::naive(cfg().index);
        let mut runner = TraceRunner::build(hot, naive, PimArch::upmem_sc25(), 64);
        let rep = runner.run_batch(1);
        assert!(rep.imbalance > 2.0, "imbalance {}", rep.imbalance);
    }

    #[test]
    fn load_balance_optimizations_cut_makespan() {
        let mut hot = spec(1_000_000);
        hot.heat_zipf = 1.4;
        let mut naive_runner = TraceRunner::build(
            hot.clone(),
            EngineConfig::naive(cfg().index),
            PimArch::upmem_sc25(),
            64,
        );
        let mut drim_runner = TraceRunner::build(hot, cfg(), PimArch::upmem_sc25(), 64);
        let naive_rep = naive_runner.run_batch(1);
        let drim_rep = drim_runner.run_batch(1);
        let speedup = naive_rep.timing.pim_s() / drim_rep.timing.pim_s();
        assert!(speedup > 1.5, "load-balance speedup {speedup}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let mut a = TraceRunner::build(spec(500_000), cfg(), PimArch::upmem_sc25(), 32);
        let mut b = TraceRunner::build(spec(500_000), cfg(), PimArch::upmem_sc25(), 32);
        let ra = a.run_batch(3);
        let rb = b.run_batch(3);
        assert_eq!(ra.timing.pim_s(), rb.timing.pim_s());
        assert_eq!(ra.qps, rb.qps);
    }

    #[test]
    fn trace_faults_are_deterministic_and_detachable() {
        let build = || TraceRunner::build(spec(500_000), cfg(), PimArch::upmem_sc25(), 32);
        let mut clean = build();
        let base = clean.run_batch(5);
        assert!(!base.fault.active());

        let mut a = build();
        a.inject_faults(FaultConfig::uniform(0xBEEF, 0.12)).unwrap();
        let ra = a.run_batch(5);
        assert!(ra.fault.active());
        assert!(ra.fault.dead_dpus > 0, "12% fail-stop over 32 DPUs");
        // same seed, fresh runner: bit-identical report
        let mut b = build();
        b.inject_faults(FaultConfig::uniform(0xBEEF, 0.12)).unwrap();
        let rb = b.run_batch(5);
        assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
        // recovery work is charged: the faulted batch is never cheaper on
        // energy than the clean one (retries + fallback add work; static
        // power runs for at least as long)
        assert!(
            ra.energy_j >= base.energy_j,
            "faulty {} vs clean {}",
            ra.energy_j,
            base.energy_j
        );
        // detaching restores the zero-fault report bit-for-bit
        a.clear_faults();
        let r2 = a.run_batch(5);
        assert_eq!(format!("{base:?}"), format!("{r2:?}"));
        // malformed configs are rejected, not installed
        let mut bad = FaultConfig::none();
        bad.straggler_rate = -1.0;
        assert!(a.inject_faults(bad).is_err());
    }

    #[test]
    fn rank_kill_in_a_trace_is_survivable_and_accounted() {
        let build = || TraceRunner::build(spec(500_000), cfg(), PimArch::upmem_sc25(), 32);
        // 32 DPUs in 4 ranks of 8; a 60% rank draw kills some but not all
        // ranks from batch 3 on.
        let rank_cfg = FaultConfig::rank_kill(0xD1, 0.6, 8, 3);
        let mut a = build();
        a.inject_faults(rank_cfg).unwrap();
        let before = a.run_batch(2);
        assert_eq!(before.fault.dead_ranks, 0, "kill gated on batch 3");
        let after = a.run_batch(5);
        assert!(after.fault.dead_ranks > 0, "some rank dies at 60%");
        assert!(after.fault.dead_ranks < 4, "not all ranks die at 60%");
        assert_eq!(after.fault.dead_dpus, after.fault.dead_ranks * 8);
        // the duplicated layout absorbs the loss: work lands on survivors,
        // nothing is dropped, and the run stays deterministic
        assert_eq!(after.fault.dropped_tasks, 0, "replicas cover dead ranks");
        assert_eq!(after.queries, 64);
        let mut b = build();
        b.inject_faults(rank_cfg).unwrap();
        b.run_batch(2);
        let rb = b.run_batch(5);
        assert_eq!(format!("{after:?}"), format!("{rb:?}"));
        assert!(after
            .summary()
            .contains(&format!("ranks={}", after.fault.dead_ranks)));
    }

    #[test]
    fn mean_qps_aggregates_batches() {
        let mut runner = TraceRunner::build(spec(200_000), cfg(), PimArch::upmem_sc25(), 16);
        let qps = runner.mean_qps(3);
        assert!(qps > 0.0);
    }
}
