//! # upmem-sim
//!
//! A functional **and** timing simulator of UPMEM-class DRAM Processing-in-Memory
//! (DRAM-PIM) systems, built as the hardware substrate for the DRIM-ANN
//! reproduction (Chen et al., SC '25).
//!
//! A real UPMEM system consists of DDR4 DIMMs whose DRAM banks each embed a
//! small in-order RISC processor (a *DPU*). The properties that drive every
//! result in the paper are architectural *ratios*, all of which this crate
//! models explicitly:
//!
//! * each DPU owns 64 MiB of DRAM (**MRAM**) and a 64 KiB scratchpad
//!   (**WRAM**) with roughly 4.72x the streaming bandwidth of MRAM;
//! * the DPU pipeline is 11 stages deep and in-order: at least 11 resident
//!   hardware threads (*tasklets*) are required to sustain ~1 instruction
//!   per cycle;
//! * there is **no hardware multiplier** — a 32-bit multiply costs ~32 cycles
//!   (shift-add), the motivation for DRIM-ANN's squaring lookup table;
//! * MRAM is reached through a DMA engine with an 8-byte burst granularity
//!   and a fixed per-transfer setup cost, so fine-grained random access wastes
//!   bandwidth;
//! * the host CPU communicates with DPUs over the ordinary DDR bus at roughly
//!   0.75 % of the aggregate in-memory bandwidth, and DPUs cannot talk to each
//!   other at all — which is why load balance dominates end-to-end throughput.
//!
//! The simulator is *functional*: user kernels execute real computation over
//! per-DPU storage while charging an instruction/IO [`meter`]. Timing and
//! results come from the same execution, so effects like load imbalance or
//! lookup-table substitution show up in both the returned data and the clock.
//! The same per-phase counters also feed a phase-resolved [`energy`] model
//! (pipeline/MRAM/WRAM/transfer/host/static components, calibrated against
//! the 13.92 W DIMM budget of paper Section 5.2), so the energy story of
//! Figs. 9/10 reads off the identical execution as the latency story.
//!
//! ```
//! use upmem_sim::{PimArch, system::PimSystem, meter::Phase};
//!
//! let arch = PimArch::upmem_sc25();
//! let mut sys = PimSystem::new(arch, 4); // 4 DPUs for the example
//! // run a toy kernel on DPU 0: 1000 additions + 1 KiB streamed from MRAM
//! let dpu = &mut sys.dpus[0];
//! dpu.meter.phase_mut(Phase::Dc).charge_add(1000);
//! dpu.meter.phase_mut(Phase::Dc).mram_stream_read(1024);
//! let t = sys.dpu_time(0, 16);
//! assert!(t > 0.0);
//! ```

pub mod config;
pub mod energy;
pub mod fault;
pub mod host;
pub mod isa;
pub mod memory;
pub mod meter;
pub mod platform;
pub mod proc;
pub mod stats;
pub mod system;
pub mod tasklet;
pub mod timeline;

pub use config::{PimArch, SimConfigError};
pub use energy::{EnergyBreakdown, EnergyCosts, EnergyModel};
pub use fault::{FaultConfig, FaultInjector, FaultOutcome, SlowdownDist};
pub use host::HostLink;
pub use isa::IsaCosts;
pub use memory::MemTracker;
pub use meter::{DpuMeter, Phase, PhaseMeter};
pub use platform::Platform;
pub use proc::ProcModel;
pub use system::{Dpu, PimSystem};
