//! Cross-batch pipelining: the execution timeline behind the paper's claim
//! that "the latency of host execution and data transfer ... is fully
//! overlapped with that of DPU execution".
//!
//! With double buffering, the host runs cluster locating for batch `i+1`
//! while the DPUs execute batch `i`; transfers ride the gaps. Steady-state
//! batch period is therefore `max(host, pim + transfers)`, and a whole run
//! of `B` batches takes one pipeline fill plus `B-1` periods. This module
//! computes those quantities exactly from per-batch stage times, so reports
//! can show both cold-start latency and steady-state throughput.

/// Stage times of one batch, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStages {
    /// Host-side work (CL + scheduling + merge).
    pub host_s: f64,
    /// PIM makespan (slowest DPU).
    pub pim_s: f64,
    /// Host->PIM push plus PIM->host gather.
    pub xfer_s: f64,
}

impl BatchStages {
    /// The stage that paces a pipelined stream of identical batches.
    pub fn period(&self) -> f64 {
        self.host_s.max(self.pim_s + self.xfer_s)
    }

    /// Latency of one batch run alone (no overlap).
    pub fn latency(&self) -> f64 {
        self.host_s + self.pim_s + self.xfer_s
    }
}

/// Total wall-clock for a sequence of (possibly differing) batches under
/// two-stage pipelining: host of batch `i+1` overlaps PIM+transfer of
/// batch `i`.
pub fn pipelined_makespan(batches: &[BatchStages]) -> f64 {
    // classic two-stage flow-shop: host stage then PIM stage
    let mut host_done = 0.0f64;
    let mut pim_done = 0.0f64;
    for b in batches {
        host_done += b.host_s;
        pim_done = host_done.max(pim_done) + b.pim_s + b.xfer_s;
    }
    pim_done
}

/// Steady-state throughput (queries/s) of a stream of identical batches.
pub fn steady_state_qps(queries_per_batch: usize, stages: BatchStages) -> f64 {
    queries_per_batch as f64 / stages.period().max(1e-12)
}

/// Energy of a pipelined run: static power accrues over the *overlapped*
/// makespan (pipelining shortens the window the background power burns
/// through — part of how DRIM-ANN wins on energy despite higher power),
/// while each batch's dynamic energy is overlap-invariant and simply sums.
pub fn pipelined_energy_j(batches: &[BatchStages], static_power_w: f64, dynamic_j: &[f64]) -> f64 {
    static_power_w * pipelined_makespan(batches) + dynamic_j.iter().sum::<f64>()
}

/// Steady-state energy per query of a stream of identical batches:
/// static power over one pipeline period plus the batch's dynamic energy,
/// divided by the queries it serves.
pub fn steady_state_j_per_query(
    queries_per_batch: usize,
    stages: BatchStages,
    static_power_w: f64,
    dynamic_j_per_batch: f64,
) -> f64 {
    (static_power_w * stages.period() + dynamic_j_per_batch) / (queries_per_batch as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BatchStages = BatchStages {
        host_s: 0.02,
        pim_s: 0.05,
        xfer_s: 0.005,
    };

    #[test]
    fn period_is_bottleneck_stage() {
        assert!((B.period() - 0.055).abs() < 1e-12);
        let host_bound = BatchStages { host_s: 0.1, ..B };
        assert!((host_bound.period() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pipeline_fills_then_streams() {
        let batches = vec![B; 10];
        let t = pipelined_makespan(&batches);
        // fill (host of first batch) + 10 PIM periods
        let expect = 0.02 + 10.0 * 0.055;
        assert!((t - expect).abs() < 1e-9, "t {t} expect {expect}");
        // far better than unpipelined
        assert!(t < 10.0 * B.latency());
    }

    #[test]
    fn host_bound_stream_paces_on_host() {
        let hb = BatchStages {
            host_s: 0.1,
            pim_s: 0.03,
            xfer_s: 0.0,
        };
        let t = pipelined_makespan(&[hb; 5]);
        // 5 host stages + the last PIM stage
        assert!((t - (0.5 + 0.03)).abs() < 1e-9, "t {t}");
    }

    #[test]
    fn steady_state_matches_period() {
        let qps = steady_state_qps(2000, B);
        assert!((qps - 2000.0 / 0.055).abs() < 1e-6);
    }

    #[test]
    fn heterogeneous_batches_accumulate_correctly() {
        let a = BatchStages {
            host_s: 0.01,
            pim_s: 0.02,
            xfer_s: 0.0,
        };
        let b = BatchStages {
            host_s: 0.05,
            pim_s: 0.01,
            xfer_s: 0.0,
        };
        // a then b: host a (0.01), pim a runs 0.01-0.03; host b runs
        // 0.01-0.06; pim b starts at max(0.06, 0.03) = 0.06, ends 0.07
        let t = pipelined_makespan(&[a, b]);
        assert!((t - 0.07).abs() < 1e-9, "t {t}");
    }

    #[test]
    fn empty_sequence_is_instant() {
        assert_eq!(pipelined_makespan(&[]), 0.0);
    }

    #[test]
    fn pipelined_energy_beats_sequential() {
        // same batches, same dynamic energy: the pipelined makespan is
        // shorter, so the static-power share (and the total) shrinks
        let batches = vec![B; 10];
        let dynamic = vec![0.5; 10];
        let piped = pipelined_energy_j(&batches, 400.0, &dynamic);
        let sequential = 400.0 * 10.0 * B.latency() + 5.0;
        assert!(piped < sequential, "piped {piped} sequential {sequential}");
        // and the dynamic part is preserved exactly
        assert!((pipelined_energy_j(&batches, 0.0, &dynamic) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn steady_state_energy_per_query() {
        let j = steady_state_j_per_query(2000, B, 400.0, 1.0);
        assert!((j - (400.0 * 0.055 + 1.0) / 2000.0).abs() < 1e-12);
    }
}
