//! Generic roofline processor model.
//!
//! Used for (a) the host CPU that runs the cluster-locating phase in
//! DRIM-ANN, and (b) the CPU/GPU comparison platforms of the paper's
//! evaluation. The timing law is the same overlap rule as the DPU meter
//! (paper Eq. 12): `t = max(ops / compute, bytes / bandwidth)`.

/// A processor described by its roofline: peak useful throughput and
/// sustained memory bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcModel {
    /// Display name, e.g. `"Xeon Gold 5218 (32T)"`.
    pub name: &'static str,
    /// Peak useful (post-SIMD-efficiency) operations per second.
    pub ops_per_sec: f64,
    /// Sustained memory bandwidth, bytes per second.
    pub bytes_per_sec: f64,
    /// Memory capacity in bytes (for out-of-memory detection).
    pub capacity_bytes: u64,
    /// Package power in watts (for the energy comparison).
    pub power_w: f64,
}

impl ProcModel {
    /// Time to execute `ops` operations touching `bytes` of memory, assuming
    /// perfect compute/IO overlap (roofline).
    #[inline]
    pub fn time(&self, ops: f64, bytes: f64) -> f64 {
        (ops / self.ops_per_sec).max(bytes / self.bytes_per_sec)
    }

    /// Whether a working set of `bytes` fits in device memory.
    #[inline]
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.capacity_bytes
    }

    /// Arithmetic intensity (ops/byte) at which this processor transitions
    /// from memory-bound to compute-bound.
    #[inline]
    pub fn ridge_point(&self) -> f64 {
        self.ops_per_sec / self.bytes_per_sec
    }

    /// Attainable throughput (ops/s) at arithmetic intensity `ai`, i.e. the
    /// classic roofline: `min(peak, ai * bw)`.
    #[inline]
    pub fn attainable(&self, ai: f64) -> f64 {
        self.ops_per_sec.min(ai * self.bytes_per_sec)
    }

    /// Energy in joules for a run of `seconds`.
    #[inline]
    pub fn energy(&self, seconds: f64) -> f64 {
        self.power_w * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ProcModel {
        ProcModel {
            name: "toy",
            ops_per_sec: 100.0,
            bytes_per_sec: 10.0,
            capacity_bytes: 1000,
            power_w: 50.0,
        }
    }

    #[test]
    fn roofline_time_is_max_of_legs() {
        let p = toy();
        // compute-bound: 1000 ops vs 10 bytes
        assert!((p.time(1000.0, 10.0) - 10.0).abs() < 1e-12);
        // memory-bound: 10 ops vs 1000 bytes
        assert!((p.time(10.0, 1000.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let p = toy();
        assert!((p.ridge_point() - 10.0).abs() < 1e-12);
        // below the ridge: bandwidth-limited
        assert!((p.attainable(1.0) - 10.0).abs() < 1e-12);
        // above the ridge: compute-limited
        assert!((p.attainable(100.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_check() {
        let p = toy();
        assert!(p.fits(1000));
        assert!(!p.fits(1001));
    }

    #[test]
    fn energy_scales_with_time() {
        let p = toy();
        assert!((p.energy(2.0) - 100.0).abs() < 1e-12);
    }
}
