//! Architectural parameters of a DRAM-PIM system.

use crate::isa::IsaCosts;

/// Rejected simulator construction parameters — the typed alternative to
/// panicking on user-reachable misconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimConfigError {
    /// A system needs at least one DPU.
    ZeroDpus,
    /// An architecture parameter is physically meaningless; the payload
    /// names the offending field.
    BadArch(&'static str),
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimConfigError::ZeroDpus => write!(f, "a PIM system needs at least one DPU"),
            SimConfigError::BadArch(field) => write!(f, "invalid architecture parameter: {field}"),
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Complete architectural description of a DRAM-PIM platform.
///
/// The default constructors mirror the hardware used in the DRIM-ANN paper;
/// see [`crate::platform::Platform`] for the full preset catalogue (UPMEM,
/// Samsung HBM-PIM, SK Hynix AiM).
#[derive(Debug, Clone)]
pub struct PimArch {
    /// Human-readable platform name (used in reports).
    pub name: &'static str,
    /// Number of data processing units (in-memory cores).
    pub num_dpus: usize,
    /// DPU clock frequency in Hz.
    pub freq_hz: f64,
    /// Per-DPU DRAM bank capacity in bytes (UPMEM: 64 MiB "MRAM").
    pub mram_bytes: u64,
    /// Per-DPU scratchpad capacity in bytes (UPMEM: 64 KiB "WRAM").
    pub wram_bytes: u64,
    /// Hardware threads per DPU (UPMEM: up to 24 tasklets).
    pub max_tasklets: usize,
    /// Pipeline depth: tasklets needed to reach one instruction per cycle
    /// (UPMEM: 11).
    pub pipeline_depth: usize,
    /// Data lanes per issued vector instruction (UPMEM: 1, i.e. pure SISD;
    /// HBM-PIM / AiM embed SIMD MAC units).
    pub simd_lanes: usize,
    /// Sustained MRAM streaming bandwidth per DPU, bytes/second
    /// (UPMEM at 350 MHz: ~700 MB/s; ~1 GB/s at 450 MHz).
    pub mram_bw_per_dpu: f64,
    /// WRAM bandwidth amplification over MRAM streaming (paper: ~4.72x).
    pub wram_amplification: f64,
    /// Minimum MRAM DMA burst in bytes (UPMEM: 8). Smaller random accesses
    /// are rounded up to a full burst.
    pub dma_burst_bytes: u64,
    /// Fixed pipeline cost of issuing one MRAM DMA transfer, in cycles.
    pub dma_setup_cycles: u64,
    /// Bandwidth derate multiplier for *random* fine-grained MRAM access:
    /// the PrIM characterisation measured small random DMAs at roughly a
    /// quarter of streaming bandwidth (row-activation and scheduling
    /// overheads), so each random burst is charged this many times over.
    pub mram_random_penalty: u64,
    /// Host<->PIM link bandwidth as a fraction of the aggregate MRAM
    /// bandwidth (paper: 0.75 %).
    pub host_link_fraction: f64,
    /// DPUs per DIMM (UPMEM: 128 = 2 ranks x 64).
    pub dpus_per_dimm: usize,
    /// Power drawn by one PIM DIMM in watts (paper: 13.92 W).
    pub dimm_power_w: f64,
    /// Idle/base power of the host machine hosting the DIMMs, watts.
    pub host_base_power_w: f64,
    /// Per-op cycle cost table.
    pub costs: IsaCosts,
}

impl PimArch {
    /// The UPMEM configuration used in the paper's main experiments
    /// (Section 5.1): 2,543 DPUs at 350 MHz, 159 GB of PIM memory.
    pub fn upmem_sc25() -> Self {
        PimArch {
            name: "UPMEM",
            num_dpus: 2543,
            freq_hz: 350.0e6,
            mram_bytes: 64 << 20,
            wram_bytes: 64 << 10,
            max_tasklets: 24,
            pipeline_depth: 11,
            simd_lanes: 1,
            // 64-bit DMA port streams up to 8 B/cycle peak, but the PrIM
            // characterisation measured ~600 MB/s sustained per DPU at
            // 350 MHz. The aggregate (~1.53 TB/s) then satisfies the paper's
            // observation that the A100's 1.94 TB/s peak is "more than
            // 1.25x" the UPMEM total.
            mram_bw_per_dpu: 600.0e6,
            wram_amplification: 4.72,
            dma_burst_bytes: 8,
            dma_setup_cycles: 8,
            mram_random_penalty: 4,
            host_link_fraction: 0.0075,
            dpus_per_dimm: 128,
            dimm_power_w: 13.92,
            // Xeon Silver 4216 host package under the light CL-only load
            // it carries in DRIM-ANN.
            host_base_power_w: 100.0,
            costs: IsaCosts::upmem(),
        }
    }

    /// An UPMEM system built from `n` DIMMs (128 DPUs each), as used in the
    /// roofline scaling study (paper Fig. 2: 16, 24 and 32 DIMMs).
    pub fn upmem_dimms(n: usize) -> Self {
        let mut a = Self::upmem_sc25();
        a.num_dpus = n * a.dpus_per_dimm;
        a
    }

    /// Number of DIMMs needed to hold `num_dpus`.
    pub fn num_dimms(&self) -> usize {
        self.num_dpus.div_ceil(self.dpus_per_dimm)
    }

    /// Aggregate MRAM capacity over all DPUs, bytes.
    pub fn total_capacity(&self) -> u64 {
        self.mram_bytes * self.num_dpus as u64
    }

    /// Aggregate in-memory streaming bandwidth over all DPUs, bytes/second.
    pub fn total_bandwidth(&self) -> f64 {
        self.mram_bw_per_dpu * self.num_dpus as f64
    }

    /// Host<->PIM link bandwidth in bytes/second.
    pub fn host_link_bw(&self) -> f64 {
        self.total_bandwidth() * self.host_link_fraction
    }

    /// Power budget of a single DPU's share of its DIMM, watts — the
    /// calibration anchor of the phase-resolved energy model
    /// ([`crate::energy::EnergyCosts::for_arch`]).
    pub fn dpu_power_w(&self) -> f64 {
        self.dimm_power_w / self.dpus_per_dimm as f64
    }

    /// Peak aggregate compute throughput in (scalar) operations per second,
    /// assuming full pipelines: `num_dpus * freq * simd_lanes`.
    pub fn peak_ops_per_sec(&self) -> f64 {
        self.num_dpus as f64 * self.freq_hz * self.simd_lanes as f64
    }

    /// Pipeline efficiency for a given tasklet count: the 11-stage in-order
    /// pipeline only reaches 1 IPC with >= `pipeline_depth` resident
    /// tasklets.
    pub fn pipeline_eff(&self, tasklets: usize) -> f64 {
        let t = tasklets.clamp(1, self.max_tasklets);
        (t as f64 / self.pipeline_depth as f64).min(1.0)
    }

    /// Effective per-DPU WRAM bandwidth, bytes/second.
    pub fn wram_bw_per_dpu(&self) -> f64 {
        self.mram_bw_per_dpu * self.wram_amplification
    }

    /// Reject architectures whose parameters make the timing and energy
    /// laws meaningless (zero frequency, no memory, no tasklets, ...).
    pub fn validate(&self) -> Result<(), SimConfigError> {
        let bad = |field| Err(SimConfigError::BadArch(field));
        if self.freq_hz <= 0.0 || !self.freq_hz.is_finite() {
            return bad("freq_hz");
        }
        if self.mram_bytes == 0 {
            return bad("mram_bytes");
        }
        if self.wram_bytes == 0 {
            return bad("wram_bytes");
        }
        if self.max_tasklets == 0 {
            return bad("max_tasklets");
        }
        if self.pipeline_depth == 0 {
            return bad("pipeline_depth");
        }
        if self.simd_lanes == 0 {
            return bad("simd_lanes");
        }
        if self.mram_bw_per_dpu <= 0.0 || !self.mram_bw_per_dpu.is_finite() {
            return bad("mram_bw_per_dpu");
        }
        if self.wram_amplification <= 0.0 || self.wram_amplification.is_nan() {
            return bad("wram_amplification");
        }
        if self.dma_burst_bytes == 0 {
            return bad("dma_burst_bytes");
        }
        if self.host_link_fraction <= 0.0
            || self.host_link_fraction.is_nan()
            || self.host_link_fraction > 1.0
        {
            return bad("host_link_fraction");
        }
        if self.dpus_per_dimm == 0 {
            return bad("dpus_per_dimm");
        }
        Ok(())
    }
}

impl Default for PimArch {
    fn default() -> Self {
        Self::upmem_sc25()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc25_capacity_matches_paper() {
        let a = PimArch::upmem_sc25();
        // 2543 x 64 MiB = 159 GiB of PIM memory, as in Section 5.1.
        let gib = a.total_capacity() as f64 / (1u64 << 30) as f64;
        assert!((gib - 158.9).abs() < 1.0, "got {gib} GiB");
    }

    #[test]
    fn host_link_is_tiny_fraction() {
        let a = PimArch::upmem_sc25();
        assert!(a.host_link_bw() < 0.01 * a.total_bandwidth());
        assert!(a.host_link_bw() > 0.005 * a.total_bandwidth());
    }

    #[test]
    fn pipeline_eff_saturates_at_depth() {
        let a = PimArch::upmem_sc25();
        assert!(a.pipeline_eff(1) < 0.1);
        assert!((a.pipeline_eff(11) - 1.0).abs() < 1e-12);
        assert!((a.pipeline_eff(24) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dimm_scaling() {
        let a = PimArch::upmem_dimms(24);
        assert_eq!(a.num_dpus, 24 * 128);
        assert_eq!(a.num_dimms(), 24);
    }

    #[test]
    fn presets_validate_and_broken_arches_do_not() {
        PimArch::upmem_sc25().validate().unwrap();
        PimArch::upmem_dimms(4).validate().unwrap();
        let mut a = PimArch::upmem_sc25();
        a.mram_bytes = 0;
        assert_eq!(a.validate(), Err(SimConfigError::BadArch("mram_bytes")));
        let mut a = PimArch::upmem_sc25();
        a.host_link_fraction = 0.0;
        assert!(a.validate().is_err());
    }

    #[test]
    fn aggregate_bandwidth_scales_with_dpus() {
        let a16 = PimArch::upmem_dimms(16);
        let a32 = PimArch::upmem_dimms(32);
        assert!((a32.total_bandwidth() / a16.total_bandwidth() - 2.0).abs() < 1e-9);
    }
}
