//! Instruction cost table for the DPU's in-order RISC pipeline.
//!
//! UPMEM DPUs execute roughly one instruction per cycle once the pipeline is
//! full, *except* for multiplication and division: there is no hardware
//! multiplier, so `mul` is expanded into a shift-add sequence of ~32 steps and
//! `div` is even slower (UPMEM SDK documentation; Gómez-Luna et al., IEEE
//! Access 2022). These asymmetric costs are the reason DRIM-ANN replaces
//! squaring with a lookup table.

/// Per-operation cycle costs of a single DPU lane.
///
/// All costs are expressed in pipeline-issue slots; the surrounding
/// [`crate::meter`] machinery converts slots into wall-clock time given the
/// clock frequency and tasklet occupancy.
#[derive(Debug, Clone, PartialEq)]
pub struct IsaCosts {
    /// Integer addition / subtraction.
    pub add: u64,
    /// Integer multiplication (software shift-add on UPMEM: ~32 cycles).
    pub mul: u64,
    /// Integer division (software: slower than multiplication).
    pub div: u64,
    /// Comparison / branch.
    pub cmp: u64,
    /// WRAM load or store (scratchpad, single cycle once pipelined).
    pub wram_access: u64,
    /// Generic ALU op (shift, mask, address arithmetic).
    pub alu: u64,
    /// Cost of acquiring an uncontended mutex guarding shared WRAM state.
    pub lock: u64,
    /// Effective cost of one squaring-table lookup: |diff|, address
    /// arithmetic, the dependent WRAM load (pipeline stall) and bank
    /// contention among tasklets sharing the table. Calibrated so the
    /// LC-phase conversion speedup lands at the paper's measured ~1.9x
    /// (Fig. 11a) instead of the naive 32x.
    pub sqt_lookup: u64,
}

impl IsaCosts {
    /// Costs of the shipped UPMEM DPU (v1.4 silicon, as characterised by the
    /// PrIM benchmark study and the DRIM-ANN paper: mul is ~32x an add).
    pub const fn upmem() -> Self {
        IsaCosts {
            add: 1,
            mul: 32,
            div: 64,
            cmp: 1,
            wram_access: 1,
            alu: 1,
            lock: 16,
            sqt_lookup: 14,
        }
    }

    /// Costs of a PIM platform with a hardware multiplier (e.g. the MAC units
    /// of Samsung HBM-PIM or SK Hynix AiM): multiply costs the same as add.
    pub const fn with_hw_multiplier() -> Self {
        IsaCosts {
            add: 1,
            mul: 1,
            div: 16,
            cmp: 1,
            wram_access: 1,
            alu: 1,
            lock: 16,
            sqt_lookup: 2,
        }
    }
}

impl Default for IsaCosts {
    fn default() -> Self {
        Self::upmem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_mul_is_32x_add() {
        let c = IsaCosts::upmem();
        assert_eq!(c.mul, 32 * c.add);
    }

    #[test]
    fn hw_multiplier_makes_mul_cheap() {
        let c = IsaCosts::with_hw_multiplier();
        assert_eq!(c.mul, c.add);
        assert!(c.div < IsaCosts::upmem().div);
    }

    #[test]
    fn default_is_upmem() {
        assert_eq!(IsaCosts::default(), IsaCosts::upmem());
    }
}
