//! Host <-> PIM data transfer model.
//!
//! Host-DPU traffic crosses the ordinary DDR4 bus and, because UPMEM DIMMs
//! are not interleaved like normal memory, achieves no more than ~0.75 % of
//! the aggregate in-PIM bandwidth (paper Section 2.2, citing the PrIM study).
//! Transfers also require all target DPUs to be synchronised (they cannot be
//! reached while a kernel runs), which is why DRIM-ANN batches queries and
//! triggers all DPUs synchronously.

use crate::config::PimArch;

/// Kinds of host<->PIM transfer, mirroring the UPMEM SDK primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XferKind {
    /// Same buffer copied to every target DPU (`dpu_broadcast_to`).
    Broadcast,
    /// Distinct per-DPU buffers pushed in parallel (`dpu_push_xfer`).
    Scatter,
    /// Distinct per-DPU buffers pulled in parallel.
    Gather,
}

/// The host link with its sustained bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct HostLink {
    /// Sustained host<->PIM bandwidth in bytes/second (aggregate over all
    /// ranks; parallel per-DPU transfers share it).
    pub bw_bytes_per_sec: f64,
    /// Fixed software latency per transfer call (driver + rank sync),
    /// seconds.
    pub call_latency_s: f64,
}

impl HostLink {
    /// Link derived from an architecture description.
    pub fn for_arch(arch: &PimArch) -> Self {
        HostLink {
            bw_bytes_per_sec: arch.host_link_bw(),
            call_latency_s: 20.0e-6,
        }
    }

    /// Time to move `bytes_per_dpu` to/from each of `ndpus` DPUs.
    ///
    /// Scatter/gather traffic sums across DPUs; a broadcast sends one copy
    /// over the bus (the DIMM fans it out to ranks).
    pub fn time(&self, kind: XferKind, bytes_per_dpu: u64, ndpus: usize) -> f64 {
        let total = match kind {
            XferKind::Broadcast => bytes_per_dpu as f64,
            XferKind::Scatter | XferKind::Gather => bytes_per_dpu as f64 * ndpus as f64,
        };
        self.call_latency_s + total / self.bw_bytes_per_sec
    }

    /// Time for one scatter/gather call moving `total_bytes` in aggregate
    /// across all target DPUs — the form for callers that tally exact
    /// totals (the engine's push/gather byte counts) rather than a
    /// per-DPU mean, so no bytes are lost to integer division.
    pub fn time_total(&self, total_bytes: u64) -> f64 {
        self.call_latency_s + total_bytes as f64 / self.bw_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_scales_with_dpus_broadcast_does_not() {
        let link = HostLink {
            bw_bytes_per_sec: 1e9,
            call_latency_s: 0.0,
        };
        let b = link.time(XferKind::Broadcast, 1_000_000, 100);
        let s = link.time(XferKind::Scatter, 1_000_000, 100);
        assert!((s / b - 100.0).abs() < 1e-9);
    }

    #[test]
    fn link_is_fraction_of_pim_bandwidth() {
        let arch = PimArch::upmem_sc25();
        let link = HostLink::for_arch(&arch);
        let frac = link.bw_bytes_per_sec / arch.total_bandwidth();
        assert!((frac - arch.host_link_fraction).abs() < 1e-12);
    }

    #[test]
    fn call_latency_floors_small_transfers() {
        let link = HostLink {
            bw_bytes_per_sec: 1e9,
            call_latency_s: 1e-3,
        };
        let t = link.time(XferKind::Gather, 1, 1);
        assert!(t >= 1e-3);
    }
}
