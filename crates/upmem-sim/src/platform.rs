//! Platform catalogue: the PIM architectures and comparison processors used
//! in the DRIM-ANN evaluation.
//!
//! The paper compares UPMEM against Faiss-CPU (Xeon Gold 5218) and Faiss-GPU
//! (NVIDIA A100 80GB PCIe), and scales DRIM-ANN analytically to Samsung's
//! HBM-PIM and SK Hynix's AiM — both of which "only support simulation for
//! now" (Section 5.4), exactly as here. Compute abilities quoted in the paper
//! relative to the A100: UPMEM ~0.54 %, HBM-PIM ~3.69 %, AiM ~12.31 %.

use crate::config::PimArch;
use crate::isa::IsaCosts;
use crate::proc::ProcModel;

/// Named PIM platform presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// UPMEM DDR4 PIM-DIMMs, the paper's primary platform.
    Upmem,
    /// Samsung HBM-PIM (FIMDRAM): SIMD FP units at bank level.
    HbmPim,
    /// SK Hynix GDDR6-AiM: bank-level MAC units, highest compute of the three.
    Aim,
}

impl Platform {
    /// All presets in evaluation order.
    pub const ALL: [Platform; 3] = [Platform::Upmem, Platform::HbmPim, Platform::Aim];

    /// Architecture description for this platform.
    pub fn arch(self) -> PimArch {
        match self {
            Platform::Upmem => PimArch::upmem_sc25(),
            Platform::HbmPim => hbm_pim(),
            Platform::Aim => aim(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Upmem => "UPMEM",
            Platform::HbmPim => "HBM-PIM",
            Platform::Aim => "AiM",
        }
    }
}

/// Samsung HBM-PIM preset.
///
/// Bank-level programmable compute units with 16-lane fp16 SIMD; we model
/// 1,024 PUs (two per pseudo-channel across a 4-cube system) at 350 MHz
/// with 4 effective lanes: ~1.4 T element-ops/s of *useful* ANNS
/// throughput. (The paper's "3.69 % of A100" counts peak FLOPs; integer
/// ANNS kernels extract a higher useful fraction from MAC pipelines than
/// from CUDA cores, so the effective-ops ratio is larger.) Internal
/// bandwidth is HBM-class (~1.6 TB/s aggregate).
pub fn hbm_pim() -> PimArch {
    PimArch {
        name: "HBM-PIM",
        num_dpus: 1024,
        freq_hz: 350.0e6,
        mram_bytes: 6 << 20, // 6 GB / 1024 PUs
        wram_bytes: 64 << 10,
        max_tasklets: 16,
        pipeline_depth: 8,
        simd_lanes: 4,
        mram_bw_per_dpu: 1.5625e9, // 1.6 TB/s aggregate
        wram_amplification: 2.0,
        dma_burst_bytes: 32,
        dma_setup_cycles: 8,
        mram_random_penalty: 2,
        host_link_fraction: 0.02,
        dpus_per_dimm: 64,
        dimm_power_w: 25.0,
        host_base_power_w: 120.0,
        costs: IsaCosts::with_hw_multiplier(),
    }
}

/// SK Hynix GDDR6-AiM preset.
///
/// 2-lane MAC pipelines at 1 GHz across 1,200 bank-level PUs give ~2.4 Tops
/// = 12.3 % of the A100, with ~4 TB/s of aggregate internal bandwidth
/// (GDDR6 bank-level parallelism exceeds HBM2e at the device level).
pub fn aim() -> PimArch {
    PimArch {
        name: "AiM",
        num_dpus: 1200,
        freq_hz: 1.0e9,
        mram_bytes: 16 << 20,
        wram_bytes: 64 << 10,
        max_tasklets: 8,
        pipeline_depth: 4,
        simd_lanes: 2,
        mram_bw_per_dpu: 3.33e9, // ~4 TB/s aggregate
        wram_amplification: 2.0,
        dma_burst_bytes: 32,
        dma_setup_cycles: 4,
        mram_random_penalty: 2,
        host_link_fraction: 0.02,
        dpus_per_dimm: 64,
        dimm_power_w: 25.0,
        host_base_power_w: 120.0,
        costs: IsaCosts::with_hw_multiplier(),
    }
}

/// Comparison / host processors (roofline models).
pub mod procs {
    use super::ProcModel;

    /// The paper's CPU baseline: Intel Xeon Gold 5218, 16C/32T @ 2.3 GHz,
    /// AVX2, 6-channel DDR4-2666 (~128 GB/s peak, ~105 GB/s sustained),
    /// 512 GB RAM, 125 W TDP.
    ///
    /// Useful ops/s assumes AVX2 over u8/f32 ANNS kernels at a sustained ~2
    /// vector ops/cycle/core with 8 lanes: 16 x 2.3e9 x 8 x 2 ~ 0.59 Tops.
    pub fn xeon_gold_5218() -> ProcModel {
        ProcModel {
            name: "Xeon Gold 5218 (32T, AVX2)",
            ops_per_sec: 0.589e12,
            bytes_per_sec: 105.0e9,
            capacity_bytes: 512 << 30,
            power_w: 125.0,
        }
    }

    /// The UPMEM server's host CPU: Xeon Silver 4216 @ 2.1 GHz. It only
    /// runs the cluster-locating phase in DRIM-ANN — a blocked GEMM, which
    /// sustains close to the FMA peak (16c x 2.1 GHz x 8 lanes x 2 FMA
    /// x 2 ports x ~0.75 efficiency ~ 1.0 Tops).
    pub fn xeon_silver_4216() -> ProcModel {
        ProcModel {
            name: "Xeon Silver 4216 (32T, AVX2)",
            ops_per_sec: 1.0e12,
            bytes_per_sec: 100.0e9,
            capacity_bytes: 256 << 30,
            power_w: 100.0,
        }
    }

    /// The paper's GPU baseline: NVIDIA A100 80GB PCIe, 19.5 Tflop/s fp32,
    /// 1,935 GB/s HBM2e, 300 W.
    pub fn a100_80gb() -> ProcModel {
        ProcModel {
            name: "NVIDIA A100 80GB PCIe",
            ops_per_sec: 19.5e12,
            bytes_per_sec: 1935.0e9,
            capacity_bytes: 80 << 30,
            power_w: 300.0,
        }
    }

    /// Two A100s (the paper's "GPU x 2" roofline point): capacity and
    /// bandwidth double, but multi-GPU ANNS scales poorly (see RUMMY), so
    /// only the roofline uses this.
    pub fn a100_x2() -> ProcModel {
        let one = a100_80gb();
        ProcModel {
            name: "2x NVIDIA A100 80GB",
            ops_per_sec: 2.0 * one.ops_per_sec,
            bytes_per_sec: 2.0 * one.bytes_per_sec,
            capacity_bytes: 2 * one.capacity_bytes,
            power_w: 2.0 * one.power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Useful aggregate compute of a PIM arch in ops/s.
    fn peak(a: &PimArch) -> f64 {
        a.peak_ops_per_sec()
    }

    #[test]
    fn compute_hierarchy_matches_paper_ordering() {
        let upmem = Platform::Upmem.arch();
        let hbm = Platform::HbmPim.arch();
        let aim = Platform::Aim.arch();
        let a100 = procs::a100_80gb();
        // UPMEM << HBM-PIM << AiM << A100 in raw compute.
        assert!(peak(&upmem) < peak(&hbm) || upmem.costs.mul > hbm.costs.mul);
        assert!(peak(&hbm) < peak(&aim));
        assert!(peak(&aim) < a100.ops_per_sec);
    }

    #[test]
    fn hbm_pim_compute_fraction_of_a100() {
        // effective element-ops: above the paper's 3.69 % FLOP ratio but
        // still an order of magnitude under the A100 (see preset docs)
        let frac = peak(&hbm_pim()) / procs::a100_80gb().ops_per_sec;
        assert!((0.03..0.10).contains(&frac), "frac {frac}");
    }

    #[test]
    fn aim_compute_fraction_of_a100() {
        let frac = peak(&aim()) / procs::a100_80gb().ops_per_sec;
        assert!((frac - 0.1231).abs() < 0.015, "frac {frac}");
    }

    #[test]
    fn a100_bandwidth_exceeds_upmem_aggregate_by_quarter() {
        let upmem = PimArch::upmem_sc25();
        let ratio = procs::a100_80gb().bytes_per_sec / upmem.total_bandwidth();
        assert!(ratio > 1.25, "ratio {ratio}");
    }

    #[test]
    fn pim_presets_have_hw_multipliers_except_upmem() {
        assert_eq!(Platform::Upmem.arch().costs.mul, 32);
        assert_eq!(Platform::HbmPim.arch().costs.mul, 1);
        assert_eq!(Platform::Aim.arch().costs.mul, 1);
    }

    #[test]
    fn gpu_oom_on_large_dataset() {
        // SIFT1B raw vectors: 1e9 x 128 B = 128 GB does not fit in 80 GB.
        assert!(!procs::a100_80gb().fits(128_000_000_000));
        assert!(procs::a100_x2().fits(128_000_000_000));
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = Platform::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"UPMEM"));
    }
}
