//! Per-DPU instruction and memory-traffic accounting.
//!
//! Kernels running inside the simulator charge every arithmetic operation and
//! every byte moved to a [`PhaseMeter`], keyed by the ANNS processing phase it
//! belongs to. Timing is then derived with the overlap law of the DRIM-ANN
//! performance model (paper Eq. 12): per phase,
//! `t = max(compute_time, io_time)`, because the DPU's DMA engine runs
//! concurrently with the pipeline.

use crate::config::PimArch;

/// The five ANNS processing phases of the paper (Fig. 1) plus a catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Cluster locating: query vs. coarse centroid distances (host side).
    Cl,
    /// Residual calculation: query minus centroid.
    Rc,
    /// Lookup-table construction: residual vs. PQ codebook distances.
    Lc,
    /// Distance calculation: LUT gathers accumulated over cluster points.
    Dc,
    /// Top-k sorting / priority-queue maintenance.
    Ts,
    /// Anything else (framework overheads, metadata handling).
    Other,
}

impl Phase {
    /// All phases in canonical order.
    pub const ALL: [Phase; 6] = [
        Phase::Cl,
        Phase::Rc,
        Phase::Lc,
        Phase::Dc,
        Phase::Ts,
        Phase::Other,
    ];

    /// Stable index into dense per-phase arrays.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            Phase::Cl => 0,
            Phase::Rc => 1,
            Phase::Lc => 2,
            Phase::Dc => 3,
            Phase::Ts => 4,
            Phase::Other => 5,
        }
    }

    /// Short display label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Cl => "CL",
            Phase::Rc => "RC",
            Phase::Lc => "LC",
            Phase::Dc => "DC",
            Phase::Ts => "TS",
            Phase::Other => "Others",
        }
    }
}

/// Cycle and byte counters for a single phase on a single DPU.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseMeter {
    /// Pipeline issue slots consumed (already weighted by the ISA cost table).
    pub cycles: u64,
    /// Bytes streamed from MRAM (sequential DMA).
    pub mram_read: u64,
    /// Bytes written back to MRAM.
    pub mram_write: u64,
    /// Bytes read from WRAM.
    pub wram_read: u64,
    /// Bytes written to WRAM.
    pub wram_write: u64,
    /// Number of discrete MRAM DMA transfers issued (for setup-cost/bandwidth
    /// derating of fine-grained access).
    pub mram_transfers: u64,
    /// Mutex acquisitions on shared per-DPU state (the top-k queue).
    pub lock_acquires: u64,
}

impl PhaseMeter {
    /// Merge another meter into this one.
    pub fn merge(&mut self, other: &PhaseMeter) {
        self.cycles += other.cycles;
        self.mram_read += other.mram_read;
        self.mram_write += other.mram_write;
        self.wram_read += other.wram_read;
        self.wram_write += other.wram_write;
        self.mram_transfers += other.mram_transfers;
        self.lock_acquires += other.lock_acquires;
    }

    /// Total MRAM traffic in bytes.
    #[inline]
    pub fn mram_bytes(&self) -> u64 {
        self.mram_read + self.mram_write
    }

    /// Total WRAM traffic in bytes.
    #[inline]
    pub fn wram_bytes(&self) -> u64 {
        self.wram_read + self.wram_write
    }

    /// Total bytes moved at any level of the hierarchy.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.mram_bytes() + self.wram_bytes()
    }

    /// Total pipeline issue slots including lock serialisation — the
    /// compute-side quantity both the timing law and the energy model
    /// consume.
    #[inline]
    pub fn compute_cycles(&self, costs: &crate::isa::IsaCosts) -> u64 {
        self.cycles + self.lock_acquires * costs.lock
    }

    /// Wall-clock seconds this phase takes on `arch` with `tasklets` resident
    /// threads, applying the compute/IO overlap law (paper Eq. 12).
    ///
    /// Compute time covers pipeline slots plus lock serialisation; IO time
    /// covers MRAM streaming at the derated DMA bandwidth plus WRAM traffic
    /// at the amplified scratchpad bandwidth.
    pub fn time(&self, arch: &PimArch, tasklets: usize) -> f64 {
        let eff = arch.pipeline_eff(tasklets);
        // SIMD platforms (HBM-PIM, AiM) retire `simd_lanes` element
        // operations per issue slot; UPMEM is SISD (lanes = 1)
        let ips = arch.freq_hz * eff * arch.simd_lanes as f64;
        let compute = self.compute_cycles(&arch.costs) as f64 / ips;

        let dma_setup = self.mram_transfers * arch.dma_setup_cycles;
        let io = self.mram_bytes() as f64 / arch.mram_bw_per_dpu
            + self.wram_bytes() as f64 / arch.wram_bw_per_dpu()
            + dma_setup as f64 / arch.freq_hz;
        compute.max(io)
    }

    /// Compute-to-IO ratio (paper Eq. 13); `None` when no bytes moved.
    pub fn c2io(&self) -> Option<f64> {
        let bytes = self.total_bytes();
        (bytes > 0).then(|| self.cycles as f64 / bytes as f64)
    }
}

/// A full per-DPU meter: one [`PhaseMeter`] per ANNS phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DpuMeter {
    phases: [PhaseMeter; 6],
}

impl DpuMeter {
    /// Fresh meter with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to a phase's counters.
    #[inline]
    pub fn phase_mut(&mut self, p: Phase) -> &mut PhaseMeter {
        &mut self.phases[p.idx()]
    }

    /// Read access to a phase's counters.
    #[inline]
    pub fn phase(&self, p: Phase) -> &PhaseMeter {
        &self.phases[p.idx()]
    }

    /// Reset all counters (start of a new batch).
    pub fn reset(&mut self) {
        self.phases = Default::default();
    }

    /// Merge another meter phase-by-phase.
    pub fn merge(&mut self, other: &DpuMeter) {
        for p in Phase::ALL {
            self.phases[p.idx()].merge(other.phase(p));
        }
    }

    /// Sum of all phases into one meter.
    pub fn total(&self) -> PhaseMeter {
        let mut t = PhaseMeter::default();
        for p in &self.phases {
            t.merge(p);
        }
        t
    }

    /// Total wall-clock time: the sum over phases of the per-phase overlap
    /// law (phases execute back-to-back on a DPU).
    pub fn time(&self, arch: &PimArch, tasklets: usize) -> f64 {
        Phase::ALL
            .iter()
            .map(|&p| self.phase(p).time(arch, tasklets))
            .sum()
    }

    /// Per-phase times in [`Phase::ALL`] order.
    pub fn phase_times(&self, arch: &PimArch, tasklets: usize) -> [f64; 6] {
        let mut out = [0.0; 6];
        for (i, &p) in Phase::ALL.iter().enumerate() {
            out[i] = self.phase(p).time(arch, tasklets);
        }
        out
    }
}

/// Charging helpers: thin wrappers over the cost table so kernels read like
/// the operations they model.
impl PhaseMeter {
    /// Charge `n` additions/subtractions.
    #[inline]
    pub fn charge_add(&mut self, n: u64) {
        self.cycles += n; // add cost folded: callers use arch-independent 1:1
    }

    /// Charge `n` additions with an explicit cost table.
    #[inline]
    pub fn charge_add_c(&mut self, n: u64, costs: &crate::isa::IsaCosts) {
        self.cycles += n * costs.add;
    }

    /// Charge `n` multiplications with the platform cost table (32 cycles
    /// each on UPMEM).
    #[inline]
    pub fn charge_mul(&mut self, n: u64, costs: &crate::isa::IsaCosts) {
        self.cycles += n * costs.mul;
    }

    /// Charge `n` comparisons/branches.
    #[inline]
    pub fn charge_cmp(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Charge `n` generic ALU ops (address arithmetic, shifts).
    #[inline]
    pub fn charge_alu(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Stream `bytes` sequentially from MRAM (one large DMA).
    #[inline]
    pub fn mram_stream_read(&mut self, bytes: u64) {
        self.mram_read += bytes;
        self.mram_transfers += 1;
    }

    /// Stream `bytes` sequentially to MRAM.
    #[inline]
    pub fn mram_stream_write(&mut self, bytes: u64) {
        self.mram_write += bytes;
        self.mram_transfers += 1;
    }

    /// Perform `n` random MRAM reads of `bytes_each`; each access is rounded
    /// up to the DMA burst size and pays one transfer setup.
    #[inline]
    pub fn mram_random_read(&mut self, n: u64, bytes_each: u64, burst: u64) {
        let per = bytes_each.div_ceil(burst) * burst;
        self.mram_read += n * per;
        self.mram_transfers += n;
    }

    /// Bulk equivalent of `n` calls to [`Self::mram_stream_read`] moving
    /// `total_bytes` in aggregate — used by closed-form (trace-mode) charge
    /// functions that must match elementwise kernels exactly.
    #[inline]
    pub fn mram_stream_read_chunks(&mut self, n_transfers: u64, total_bytes: u64) {
        self.mram_read += total_bytes;
        self.mram_transfers += n_transfers;
    }

    /// Bulk equivalent of `n` streamed writes totalling `total_bytes`.
    #[inline]
    pub fn mram_stream_write_chunks(&mut self, n_transfers: u64, total_bytes: u64) {
        self.mram_write += total_bytes;
        self.mram_transfers += n_transfers;
    }

    /// Acquire the shared-state lock `n` times (bulk form of [`Self::lock`]).
    #[inline]
    pub fn lock_n(&mut self, n: u64) {
        self.lock_acquires += n;
    }

    /// Read `bytes` from WRAM.
    #[inline]
    pub fn wram_read_bytes(&mut self, bytes: u64) {
        self.wram_read += bytes;
    }

    /// Write `bytes` to WRAM.
    #[inline]
    pub fn wram_write_bytes(&mut self, bytes: u64) {
        self.wram_write += bytes;
    }

    /// Acquire the shared-state lock once.
    #[inline]
    pub fn lock(&mut self) {
        self.lock_acquires += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> PimArch {
        PimArch::upmem_sc25()
    }

    #[test]
    fn phase_indices_are_dense_and_unique() {
        let mut seen = [false; 6];
        for p in Phase::ALL {
            assert!(!seen[p.idx()]);
            seen[p.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn compute_bound_phase_time() {
        let a = arch();
        let mut m = PhaseMeter::default();
        m.charge_add(350_000_000); // exactly one second of adds at 1 IPC
        let t = m.time(&a, 16);
        assert!((t - 1.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn io_bound_phase_time() {
        let a = arch();
        let mut m = PhaseMeter::default();
        m.mram_stream_read(a.mram_bw_per_dpu as u64); // one second of MRAM streaming
        let t = m.time(&a, 16);
        assert!((t - 1.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn overlap_takes_max_not_sum() {
        let a = arch();
        let mut m = PhaseMeter::default();
        m.charge_add(350_000_000); // one second of adds at 350 MHz
        m.mram_stream_read(a.mram_bw_per_dpu as u64); // one second of IO
        let t = m.time(&a, 16);
        assert!((t - 1.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn few_tasklets_slow_compute() {
        let a = arch();
        let mut m = PhaseMeter::default();
        m.charge_add(1_000_000);
        let t1 = m.time(&a, 1);
        let t11 = m.time(&a, 11);
        assert!(t1 > 10.0 * t11, "t1={t1} t11={t11}");
    }

    #[test]
    fn random_reads_round_to_burst() {
        let mut m = PhaseMeter::default();
        m.mram_random_read(10, 1, 8); // 10 one-byte reads
        assert_eq!(m.mram_read, 80); // each costs a full 8-byte burst
        assert_eq!(m.mram_transfers, 10);
    }

    #[test]
    fn wram_is_faster_than_mram() {
        let a = arch();
        let mut via_mram = PhaseMeter::default();
        via_mram.mram_stream_read(1 << 20);
        let mut via_wram = PhaseMeter::default();
        via_wram.wram_read_bytes(1 << 20);
        let tm = via_mram.time(&a, 16);
        let tw = via_wram.time(&a, 16);
        assert!(
            (tm / tw - a.wram_amplification).abs() / a.wram_amplification < 0.2,
            "ratio {}",
            tm / tw
        );
    }

    #[test]
    fn lock_acquires_add_compute_time() {
        let a = arch();
        let mut m = PhaseMeter::default();
        m.charge_add(1000);
        let t0 = m.time(&a, 16);
        for _ in 0..1000 {
            m.lock();
        }
        let t1 = m.time(&a, 16);
        assert!(t1 > t0);
    }

    #[test]
    fn dpu_meter_sums_phases() {
        let a = arch();
        let mut m = DpuMeter::new();
        m.phase_mut(Phase::Lc).charge_add(350_000_000);
        m.phase_mut(Phase::Dc).charge_add(350_000_000);
        let t = m.time(&a, 16);
        assert!((t - 2.0).abs() < 1e-9);
        let times = m.phase_times(&a, 16);
        assert!((times[Phase::Lc.idx()] - 1.0).abs() < 1e-9);
        assert!((times[Phase::Dc.idx()] - 1.0).abs() < 1e-9);
        assert_eq!(times[Phase::Cl.idx()], 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DpuMeter::new();
        a.phase_mut(Phase::Dc).charge_add(10);
        let mut b = DpuMeter::new();
        b.phase_mut(Phase::Dc).charge_add(5);
        b.phase_mut(Phase::Dc).mram_stream_read(64);
        a.merge(&b);
        assert_eq!(a.phase(Phase::Dc).cycles, 15);
        assert_eq!(a.phase(Phase::Dc).mram_read, 64);
    }

    #[test]
    fn c2io_reports_ratio() {
        let mut m = PhaseMeter::default();
        assert!(m.c2io().is_none());
        m.charge_add(100);
        m.mram_stream_read(50);
        assert_eq!(m.c2io(), Some(2.0));
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = DpuMeter::new();
        m.phase_mut(Phase::Ts).lock();
        m.reset();
        assert_eq!(m.total(), PhaseMeter::default());
    }
}
