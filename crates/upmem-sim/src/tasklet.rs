//! Tasklet (hardware thread) occupancy and the shared top-k lock model.
//!
//! Each UPMEM DPU runs up to 24 *tasklets* through an 11-stage in-order
//! pipeline; a single tasklet therefore achieves at best 1/11 IPC, and full
//! throughput requires at least 11 resident tasklets (Gómez-Luna et al.,
//! IEEE Access 2022). DRIM-ANN assigns work over codebook entries / cluster
//! points to tasklets, so the model here is occupancy plus a synchronisation
//! cost on the shared per-DPU top-k priority queue. Section 6 of the paper
//! ("Lock pruning") reports that the naive locked queue costs up to ~50 % of
//! total latency, removed by forwarding the current k-th distance into the
//! distance-calculation loop.

use crate::config::PimArch;

/// Static description of how a kernel spreads work across tasklets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskletPlan {
    /// Resident tasklets executing the kernel.
    pub tasklets: usize,
    /// Per-batch synchronisation barriers (e.g. phase boundaries).
    pub barriers: u64,
    /// Extra WRAM bytes consumed per additional tasklet (private buffers).
    pub wram_per_tasklet: u64,
}

impl TaskletPlan {
    /// A plan using `tasklets` threads with no extra overheads.
    pub fn new(tasklets: usize) -> Self {
        TaskletPlan {
            tasklets,
            barriers: 0,
            wram_per_tasklet: 0,
        }
    }

    /// The paper's default: enough tasklets to fill the pipeline (11 on
    /// UPMEM silicon; we use 16 as the SDK's sweet spot).
    pub fn default_for(arch: &PimArch) -> Self {
        TaskletPlan::new(arch.pipeline_depth.max(16).min(arch.max_tasklets))
    }

    /// Pipeline efficiency achieved by this plan on `arch`.
    pub fn efficiency(&self, arch: &PimArch) -> f64 {
        arch.pipeline_eff(self.tasklets)
    }

    /// Total private WRAM needed by the plan.
    pub fn wram_footprint(&self) -> u64 {
        self.tasklets as u64 * self.wram_per_tasklet
    }
}

/// Outcome statistics of the shared top-k queue under a given locking policy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LockStats {
    /// Candidates that took the lock and updated the queue.
    pub locked_updates: u64,
    /// Candidates rejected without locking thanks to the forwarded bound.
    pub pruned: u64,
}

impl LockStats {
    /// Fraction of candidates that avoided the lock.
    pub fn prune_rate(&self) -> f64 {
        let total = self.locked_updates + self.pruned;
        if total == 0 {
            0.0
        } else {
            self.pruned as f64 / total as f64
        }
    }
}

/// Locking policy for the shared top-k priority queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockPolicy {
    /// Every candidate insertion takes the shared lock (baseline).
    LockAlways,
    /// DRIM-ANN's lock pruning: the current k-th best distance is forwarded
    /// to the distance loop; candidates not beating it never lock. The
    /// forwarded bound may be stale, which is safe (it only admits extra
    /// candidates, never drops true ones).
    #[default]
    Forwarding,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_fills_pipeline() {
        let arch = PimArch::upmem_sc25();
        let plan = TaskletPlan::default_for(&arch);
        assert!((plan.efficiency(&arch) - 1.0).abs() < 1e-12);
        assert!(plan.tasklets <= arch.max_tasklets);
    }

    #[test]
    fn single_tasklet_is_pipeline_limited() {
        let arch = PimArch::upmem_sc25();
        let plan = TaskletPlan::new(1);
        assert!((plan.efficiency(&arch) - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn wram_footprint_scales() {
        let plan = TaskletPlan {
            tasklets: 16,
            barriers: 2,
            wram_per_tasklet: 256,
        };
        assert_eq!(plan.wram_footprint(), 4096);
    }

    #[test]
    fn prune_rate() {
        let s = LockStats {
            locked_updates: 10,
            pruned: 90,
        };
        assert!((s.prune_rate() - 0.9).abs() < 1e-12);
        assert_eq!(LockStats::default().prune_rate(), 0.0);
    }

    #[test]
    fn default_policy_is_forwarding() {
        assert_eq!(LockPolicy::default(), LockPolicy::Forwarding);
    }
}
