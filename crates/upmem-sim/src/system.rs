//! Whole-system assembly: a set of DPUs plus the host link, and the batch
//! execution timeline.
//!
//! DRIM-ANN's execution model (paper Fig. 4): per batch, the host runs
//! cluster locating and pushes tasks; all DPUs are triggered synchronously
//! and run RC/LC/DC/TS; the host gathers the per-DPU top-k lists and merges.
//! Host work and host<->PIM transfers overlap DPU execution across batches,
//! so batch time is `max(host_time, pim_time)` with `pim_time = max over
//! DPUs` (the synchronous barrier is what makes load balance critical).

use crate::config::{PimArch, SimConfigError};
use crate::energy::EnergyModel;
use crate::fault::{FaultInjector, FaultOutcome};
use crate::host::HostLink;
use crate::memory::MemTracker;
use crate::meter::{DpuMeter, Phase};
use crate::stats;

/// One simulated DPU: capacity trackers plus the op/IO meter.
///
/// Application data (cluster slices, codebooks, LUTs) lives in the embedding
/// application, keyed by DPU id; the simulator tracks capacity and cost.
#[derive(Debug, Clone)]
pub struct Dpu {
    /// Index within the system.
    pub id: usize,
    /// 64 MiB DRAM bank.
    pub mram: MemTracker,
    /// 64 KiB scratchpad.
    pub wram: MemTracker,
    /// Cost accounting for the current batch.
    pub meter: DpuMeter,
}

impl Dpu {
    /// Fresh DPU for the given architecture.
    pub fn new(id: usize, arch: &PimArch) -> Self {
        Dpu {
            id,
            mram: MemTracker::new(arch.mram_bytes),
            wram: MemTracker::new(arch.wram_bytes),
            meter: DpuMeter::new(),
        }
    }
}

/// Timing summary of one executed batch.
#[derive(Debug, Clone, Default)]
pub struct BatchTiming {
    /// Host-side time (CL phase and merge), seconds.
    pub host_s: f64,
    /// Per-DPU total times, seconds.
    pub dpu_s: Vec<f64>,
    /// Host->PIM push time, seconds.
    pub push_s: f64,
    /// PIM->host gather time, seconds.
    pub gather_s: f64,
    /// Total host->PIM push bytes (all DPUs) — feeds the transfer leg of
    /// the energy breakdown.
    pub push_bytes: u64,
    /// Total PIM->host gather bytes (all DPUs).
    pub gather_bytes: u64,
    /// Aggregated per-phase PIM times (of the *critical* DPU), seconds.
    pub phase_s: [f64; 6],
}

impl BatchTiming {
    /// PIM-side makespan: slowest DPU (synchronous trigger and barrier).
    pub fn pim_s(&self) -> f64 {
        stats::max(&self.dpu_s)
    }

    /// End-to-end batch latency. Host execution and transfers overlap DPU
    /// execution (pipelined across batches), as measured in the paper
    /// ("the latency of host execution and data transfer ... is fully
    /// overlapped with that of DPU execution").
    pub fn total_s(&self) -> f64 {
        let xfer = self.push_s + self.gather_s;
        self.host_s.max(self.pim_s() + xfer)
    }

    /// Load imbalance across DPUs (max/mean); the headroom the paper's
    /// layout + scheduling optimizations reclaim.
    pub fn imbalance(&self) -> f64 {
        stats::imbalance(&self.dpu_s)
    }

    /// Load imbalance at *rank* granularity: fold DPU times into per-rank
    /// sums (rank = `dpu / dpus_per_rank`) and take max/mean. This is the
    /// metric the sharding router minimizes; `dpus_per_rank == 0` (no rank
    /// topology) degenerates to per-DPU [`imbalance`](Self::imbalance).
    pub fn rank_imbalance(&self, dpus_per_rank: usize) -> f64 {
        stats::imbalance(&stats::rank_sums(&self.dpu_s, dpus_per_rank))
    }

    /// Mean DPU utilization relative to the slowest DPU, in \[0,1\].
    pub fn dpu_utilization(&self) -> f64 {
        let m = self.pim_s();
        if m == 0.0 {
            1.0
        } else {
            stats::mean(&self.dpu_s) / m
        }
    }
}

/// A complete PIM system: architecture + DPUs + host link.
#[derive(Debug, Clone)]
pub struct PimSystem {
    /// Architecture parameters.
    pub arch: PimArch,
    /// The DPUs. May be fewer than `arch.num_dpus` for scaled-down runs;
    /// timing laws use per-DPU quantities so ratios are preserved.
    pub dpus: Vec<Dpu>,
    /// Host<->PIM link.
    pub link: HostLink,
    /// Tasklets resident per DPU for the current kernels.
    pub tasklets: usize,
    /// Fault injector applied at dispatch (`None` = perfectly reliable
    /// hardware, today's default).
    pub fault: Option<FaultInjector>,
    /// Per-DPU straggler slowdown factors for the current batch; empty when
    /// no straggler fired (the common case takes no extra work).
    slowdown: Vec<f64>,
    /// Per-DPU barrier-time caps for the current batch (hedged stragglers:
    /// the host stops waiting at the cap); empty when nothing was hedged.
    time_cap: Vec<f64>,
}

impl PimSystem {
    /// Build a system with `ndpus` DPUs of the given architecture.
    pub fn new(arch: PimArch, ndpus: usize) -> Self {
        let link = HostLink::for_arch(&arch);
        let dpus = (0..ndpus).map(|i| Dpu::new(i, &arch)).collect();
        let tasklets = arch.pipeline_depth.max(16).min(arch.max_tasklets);
        PimSystem {
            arch,
            dpus,
            link,
            tasklets,
            fault: None,
            slowdown: Vec::new(),
            time_cap: Vec::new(),
        }
    }

    /// [`Self::new`] with the misconfiguration checks callers can recover
    /// from: at least one DPU, and an architecture whose parameters are
    /// physically meaningful.
    pub fn try_new(arch: PimArch, ndpus: usize) -> Result<Self, SimConfigError> {
        if ndpus == 0 {
            return Err(SimConfigError::ZeroDpus);
        }
        arch.validate()?;
        Ok(Self::new(arch, ndpus))
    }

    /// Build with the architecture's full DPU count.
    pub fn full(arch: PimArch) -> Self {
        let n = arch.num_dpus;
        Self::new(arch, n)
    }

    /// Number of instantiated DPUs.
    pub fn len(&self) -> usize {
        self.dpus.len()
    }

    /// True when no DPUs are instantiated.
    pub fn is_empty(&self) -> bool {
        self.dpus.is_empty()
    }

    /// Reset all meters and per-batch fault modifiers (start of batch).
    pub fn reset_meters(&mut self) {
        for d in &mut self.dpus {
            d.meter.reset();
        }
        self.slowdown.clear();
        self.time_cap.clear();
    }

    /// Fault outcome of dispatching wave `attempt` of batch `batch` to DPU
    /// `dpu` — [`FaultOutcome::Healthy`] when no injector is attached.
    pub fn fault_outcome(&self, dpu: usize, batch: u64, attempt: u32) -> FaultOutcome {
        match &self.fault {
            Some(inj) => inj.outcome(dpu, batch, attempt),
            None => FaultOutcome::Healthy,
        }
    }

    /// Record a straggler: DPU `i`'s batch time is multiplied by `factor`.
    pub fn set_dpu_slowdown(&mut self, i: usize, factor: f64) {
        if self.slowdown.is_empty() {
            self.slowdown = vec![1.0; self.dpus.len()];
        }
        self.slowdown[i] = self.slowdown[i].max(factor);
    }

    /// Cap DPU `i`'s contribution to the batch barrier at `seconds` — the
    /// host stopped waiting (hedged re-dispatch) at that point. The DPU's
    /// dynamic energy is still charged in full through its meter.
    pub fn cap_dpu_time(&mut self, i: usize, seconds: f64) {
        if self.time_cap.is_empty() {
            self.time_cap = vec![f64::INFINITY; self.dpus.len()];
        }
        self.time_cap[i] = self.time_cap[i].min(seconds);
    }

    /// Time of DPU `i` for the current batch.
    pub fn dpu_time(&self, i: usize, tasklets: usize) -> f64 {
        self.dpus[i].meter.time(&self.arch, tasklets)
    }

    /// Collect the batch timing given host time and the *total* push and
    /// gather bytes across all DPUs (exact tallies, no per-DPU rounding).
    pub fn batch_timing(&self, host_s: f64, push_bytes: u64, gather_bytes: u64) -> BatchTiming {
        let mut dpu_s: Vec<f64> = self
            .dpus
            .iter()
            .map(|d| d.meter.time(&self.arch, self.tasklets))
            .collect();
        // Fault modifiers: straggler slowdowns stretch a DPU's barrier
        // contribution, hedging caps it (the host stopped waiting). Both
        // vectors are empty in the zero-fault case, leaving the times
        // bit-identical to the unmodified path.
        if !self.slowdown.is_empty() {
            for (t, &f) in dpu_s.iter_mut().zip(&self.slowdown) {
                *t *= f;
            }
        }
        if !self.time_cap.is_empty() {
            for (t, &cap) in dpu_s.iter_mut().zip(&self.time_cap) {
                *t = t.min(cap);
            }
        }
        let push_s = self.link.time_total(push_bytes);
        let gather_s = self.link.time_total(gather_bytes);
        // phase breakdown of the critical (slowest) DPU
        let critical = dpu_s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let phase_s = if self.dpus.is_empty() {
            [0.0; 6]
        } else {
            self.dpus[critical]
                .meter
                .phase_times(&self.arch, self.tasklets)
        };
        BatchTiming {
            host_s,
            dpu_s,
            push_s,
            gather_s,
            push_bytes,
            gather_bytes,
            phase_s,
        }
    }

    /// Energy model of this system.
    pub fn energy_model(&self) -> EnergyModel {
        // When running scaled-down (fewer instantiated DPUs than the real
        // machine), power still reflects the full configured system: the
        // real machine cannot power-gate unused MRAM (paper Section 5.2).
        EnergyModel::for_arch(&self.arch)
    }

    /// Phase-resolved energy of the batch described by `timing`: dynamic
    /// DPU energy from the aggregated meters, transfer energy from the
    /// recorded link bytes, host-busy energy at `host_power_w` above idle,
    /// and static energy over the batch wall clock (full configured
    /// system — see [`Self::energy_model`]).
    pub fn batch_energy(
        &self,
        timing: &BatchTiming,
        host_power_w: f64,
    ) -> crate::energy::EnergyBreakdown {
        self.energy_model().breakdown(
            &self.aggregate_meter(),
            &self.arch.costs,
            timing.total_s(),
            timing.host_s,
            host_power_w,
            timing.push_bytes + timing.gather_bytes,
        )
    }

    /// Aggregate per-phase meter over all DPUs (for C2IO diagnostics).
    pub fn aggregate_meter(&self) -> DpuMeter {
        let mut total = DpuMeter::new();
        for d in &self.dpus {
            total.merge(&d.meter);
        }
        total
    }

    /// Convenience: sum of a phase's time across no DPU — the *mean* phase
    /// time weighted by the slowest DPU is already in [`BatchTiming`]; this
    /// returns the mean per-DPU time of one phase for diagnostics.
    pub fn mean_phase_time(&self, p: Phase) -> f64 {
        let times: Vec<f64> = self
            .dpus
            .iter()
            .map(|d| d.meter.phase(p).time(&self.arch, self.tasklets))
            .collect();
        stats::mean(&times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::Phase;

    fn small_sys() -> PimSystem {
        PimSystem::new(PimArch::upmem_sc25(), 4)
    }

    #[test]
    fn batch_total_is_max_of_host_and_pim() {
        let mut sys = small_sys();
        sys.dpus[2]
            .meter
            .phase_mut(Phase::Dc)
            .charge_add(350_000_000); // 1 s on DPU 2
        let t = sys.batch_timing(0.5, 0, 0);
        assert!((t.pim_s() - 1.0).abs() < 1e-9);
        assert!(t.total_s() >= 1.0);
        // host-dominated case
        let t2 = sys.batch_timing(3.0, 0, 0);
        assert!((t2.total_s() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detected() {
        let mut sys = small_sys();
        for d in &mut sys.dpus {
            d.meter.phase_mut(Phase::Dc).charge_add(1_000_000);
        }
        sys.dpus[0].meter.phase_mut(Phase::Dc).charge_add(3_000_000);
        let t = sys.batch_timing(0.0, 0, 0);
        assert!(t.imbalance() > 1.5, "imbalance {}", t.imbalance());
        assert!(t.dpu_utilization() < 0.7);
    }

    #[test]
    fn rank_imbalance_folds_dpus_into_ranks() {
        let mut sys = small_sys(); // 4 DPUs = 2 ranks of 2
                                   // per-DPU loads 3,1,2,2: per-DPU imbalance 1.5, but both ranks sum
                                   // to 4, so the rank barrier is perfectly balanced
        for (d, units) in sys.dpus.iter_mut().zip([3u64, 1, 2, 2]) {
            d.meter.phase_mut(Phase::Dc).charge_add(units * 1_000_000);
        }
        let t = sys.batch_timing(0.0, 0, 0);
        assert!(t.imbalance() > 1.4);
        assert!((t.rank_imbalance(2) - 1.0).abs() < 1e-9);
        // no topology degenerates to the per-DPU metric
        assert!((t.rank_imbalance(0) - t.imbalance()).abs() < 1e-12);
    }

    #[test]
    fn balanced_system_has_unit_imbalance() {
        let mut sys = small_sys();
        for d in &mut sys.dpus {
            d.meter.phase_mut(Phase::Lc).charge_add(42_000);
        }
        let t = sys.batch_timing(0.0, 0, 0);
        assert!((t.imbalance() - 1.0).abs() < 1e-9);
        assert!((t.dpu_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transfers_add_to_pim_side() {
        let mut sys = small_sys();
        sys.dpus[0].meter.phase_mut(Phase::Dc).charge_add(1000);
        let t0 = sys.batch_timing(0.0, 0, 0);
        let t1 = sys.batch_timing(0.0, 1 << 20, 1 << 16);
        assert!(t1.total_s() > t0.total_s());
        assert!(t1.push_s > 0.0 && t1.gather_s > 0.0);
    }

    #[test]
    fn reset_meters_clears_times() {
        let mut sys = small_sys();
        sys.dpus[1].meter.phase_mut(Phase::Ts).charge_add(1000);
        sys.reset_meters();
        let t = sys.batch_timing(0.0, 0, 0);
        assert_eq!(t.pim_s(), 0.0);
    }

    #[test]
    fn phase_breakdown_comes_from_critical_dpu() {
        let mut sys = small_sys();
        sys.dpus[1]
            .meter
            .phase_mut(Phase::Lc)
            .charge_add(350_000_000);
        sys.dpus[2]
            .meter
            .phase_mut(Phase::Dc)
            .charge_add(35_000_000);
        let t = sys.batch_timing(0.0, 0, 0);
        // DPU 1 is critical; its breakdown is all LC.
        assert!(t.phase_s[Phase::Lc.idx()] > 0.9);
        assert_eq!(t.phase_s[Phase::Dc.idx()], 0.0);
    }

    #[test]
    fn full_system_instantiates_arch_count() {
        let arch = PimArch::upmem_dimms(1);
        let sys = PimSystem::full(arch);
        assert_eq!(sys.len(), 128);
        assert!(!sys.is_empty());
    }

    #[test]
    fn batch_energy_tracks_work_and_transfers() {
        let mut sys = small_sys();
        sys.dpus[0]
            .meter
            .phase_mut(Phase::Dc)
            .charge_add(10_000_000);
        let t = sys.batch_timing(0.001, 1 << 16, 1 << 12);
        let e = sys.batch_energy(&t, 100.0);
        assert!(e.dpu_pipeline_j > 0.0);
        assert!(e.transfer_j > 0.0);
        assert!(e.host_busy_j > 0.0);
        assert!(e.static_j > 0.0);
        assert!(e.phase_j(Phase::Dc) > 0.0);
        assert_eq!(e.phase_j(Phase::Lc), 0.0);
        // recorded link bytes are the exact totals the caller tallied
        assert_eq!(t.push_bytes, 1u64 << 16);
        assert_eq!(t.gather_bytes, 1u64 << 12);
        // phase-resolved total stays below the flat upper bound
        assert!(e.total_j() <= sys.energy_model().energy_j(t.total_s()));
    }

    #[test]
    fn slowdown_and_cap_reshape_the_barrier() {
        let mut sys = small_sys();
        for d in &mut sys.dpus {
            d.meter.phase_mut(Phase::Dc).charge_add(350_000_000); // ~1 s each
        }
        let base = sys.batch_timing(0.0, 0, 0);
        assert!((base.pim_s() - 1.0).abs() < 1e-6);
        // straggler: DPU 1 runs 3x slower
        sys.set_dpu_slowdown(1, 3.0);
        let slowed = sys.batch_timing(0.0, 0, 0);
        assert!((slowed.pim_s() - 3.0 * base.dpu_s[1]).abs() < 1e-9);
        // hedged: the host stops waiting for DPU 1 at 1.5x the base time
        let cap = 1.5 * base.dpu_s[1];
        sys.cap_dpu_time(1, cap);
        let hedged = sys.batch_timing(0.0, 0, 0);
        assert!((hedged.dpu_s[1] - cap).abs() < 1e-12);
        // reset clears both modifiers
        sys.reset_meters();
        let t = sys.batch_timing(0.0, 0, 0);
        assert_eq!(t.pim_s(), 0.0);
        for d in &mut sys.dpus {
            d.meter.phase_mut(Phase::Dc).charge_add(1000);
        }
        let clean = sys.batch_timing(0.0, 0, 0);
        assert!((clean.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fault_outcome_defaults_to_healthy_without_injector() {
        let sys = small_sys();
        assert_eq!(
            sys.fault_outcome(0, 0, 0),
            crate::fault::FaultOutcome::Healthy
        );
    }

    #[test]
    fn try_new_rejects_misconfiguration() {
        assert_eq!(
            PimSystem::try_new(PimArch::upmem_sc25(), 0).err(),
            Some(SimConfigError::ZeroDpus)
        );
        let mut arch = PimArch::upmem_sc25();
        arch.freq_hz = 0.0;
        assert!(matches!(
            PimSystem::try_new(arch, 4),
            Err(SimConfigError::BadArch(_))
        ));
        assert!(PimSystem::try_new(PimArch::upmem_sc25(), 4).is_ok());
    }

    #[test]
    fn aggregate_meter_merges_all() {
        let mut sys = small_sys();
        for d in &mut sys.dpus {
            d.meter.phase_mut(Phase::Rc).charge_add(10);
        }
        let agg = sys.aggregate_meter();
        assert_eq!(agg.phase(Phase::Rc).cycles, 40);
    }
}
