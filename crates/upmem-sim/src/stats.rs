//! Small numeric helpers used across reports: means, geometric means,
//! load-imbalance factors.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values; 0 for an empty slice.
///
/// The paper reports geomean speedups (e.g. 1.89x on SIFT100M, Fig. 7).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Max value of a slice; `f64::NEG_INFINITY` for an empty slice (the
/// identity of `max`, so all-negative inputs fold correctly).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Normalize a slice into fractions of its sum; all zeros when the sum is
/// not positive. Used by the latency and energy breakdown reports.
pub fn fractions<const N: usize>(xs: &[f64; N]) -> [f64; N] {
    let total: f64 = xs.iter().sum();
    if total > 0.0 {
        xs.map(|x| x / total)
    } else {
        [0.0; N]
    }
}

/// Load-imbalance factor `max / mean`; 1.0 means perfectly balanced work and
/// equals the slowdown suffered by a synchronous all-DPU barrier relative to
/// ideal balancing.
pub fn imbalance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        1.0
    } else {
        max(xs) / m
    }
}

/// Fold a per-DPU series into per-rank sums, where DPU `d` belongs to rank
/// `d / dpus_per_rank` (the last rank may be partial). `dpus_per_rank == 0`
/// means "no rank topology" and returns the input unchanged — callers can
/// then feed either granularity to [`imbalance`] uniformly.
pub fn rank_sums(per_dpu: &[f64], dpus_per_rank: usize) -> Vec<f64> {
    if dpus_per_rank == 0 {
        return per_dpu.to_vec();
    }
    per_dpu
        .chunks(dpus_per_rank)
        .map(|c| c.iter().sum())
        .collect()
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Percentile of an unsorted slice with linear interpolation between the
/// two closest order statistics, `p` in [0, 100]. 0 for an empty slice.
///
/// This is the estimator latency scoreboards expect (numpy's default):
/// `p50` of `[1, 2, 3, 4]` is 2.5, and tail quantiles of small samples
/// move smoothly with `p` instead of snapping to the nearest rank. For
/// the classic step-function definition use [`percentile_nearest_rank`].
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let h = (p / 100.0).clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (h - lo as f64) * (v[hi] - v[lo])
    }
}

/// Nearest-rank percentile of an unsorted slice, `p` in (0, 100]: the
/// smallest sample with at least `p`% of the distribution at or below it
/// (rank `ceil(p/100 * n)`). Always returns an observed sample; 0 for an
/// empty slice. The fault bench pins its hedging criterion to this
/// definition so its p99 is an actual measured batch time.
pub fn percentile_nearest_rank(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_leq_mean() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        assert!(geomean(&xs) <= mean(&xs));
    }

    #[test]
    fn max_handles_all_negative_and_empty() {
        assert_eq!(max(&[3.0, 7.0, 2.0]), 7.0);
        // folding from 0.0 would wrongly return 0 here
        assert_eq!(max(&[-5.0, -2.0, -9.0]), -2.0);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn imbalance_balanced_is_one() {
        assert!((imbalance(&[2.0, 2.0, 2.0]) - 1.0).abs() < 1e-12);
        let i = imbalance(&[1.0, 1.0, 4.0]);
        assert!((i - 2.0).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 1.0);
    }

    #[test]
    fn fractions_normalize_or_zero() {
        let fr = fractions(&[1.0, 3.0]);
        assert_eq!(fr, [0.25, 0.75]);
        assert_eq!(fractions(&[0.0, 0.0]), [0.0, 0.0]);
    }

    #[test]
    fn rank_sums_folds_by_rank() {
        let per_dpu = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(rank_sums(&per_dpu, 2), vec![3.0, 7.0, 5.0]);
        assert_eq!(rank_sums(&per_dpu, 5), vec![15.0]);
        // no topology: identity, so imbalance() sees the same series
        assert_eq!(rank_sums(&per_dpu, 0), per_dpu.to_vec());
        assert_eq!(rank_sums(&[], 4), Vec::<f64>::new());
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[5.0, 5.0]), 0.0);
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_basic() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_interpolates_between_order_statistics() {
        // even-length sample: the median falls between two samples
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
        // p99 of 50 samples 1..=50: h = 0.99 * 49 = 48.51
        let xs: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        assert!((percentile(&xs, 99.0) - 49.51).abs() < 1e-12);
        // monotone in p, bounded by the extremes
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = percentile(&xs, p);
            assert!(v >= prev && (1.0..=50.0).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn percentile_nearest_rank_returns_observed_samples() {
        let xs: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        // rank ceil(0.99 * 50) = 50 -> the 50th order statistic
        assert_eq!(percentile_nearest_rank(&xs, 99.0), 50.0);
        assert_eq!(percentile_nearest_rank(&xs, 50.0), 25.0);
        assert_eq!(percentile_nearest_rank(&xs, 100.0), 50.0);
        // tiny p clamps to the first order statistic
        assert_eq!(percentile_nearest_rank(&xs, 0.0), 1.0);
        assert_eq!(percentile_nearest_rank(&[], 99.0), 0.0);
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_nearest_rank(&xs, 50.0), 2.0);
    }
}
