//! Small numeric helpers used across reports: means, geometric means,
//! load-imbalance factors.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values; 0 for an empty slice.
///
/// The paper reports geomean speedups (e.g. 1.89x on SIFT100M, Fig. 7).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Max value of a slice (0 for empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Normalize a slice into fractions of its sum; all zeros when the sum is
/// not positive. Used by the latency and energy breakdown reports.
pub fn fractions<const N: usize>(xs: &[f64; N]) -> [f64; N] {
    let total: f64 = xs.iter().sum();
    if total > 0.0 {
        xs.map(|x| x / total)
    } else {
        [0.0; N]
    }
}

/// Load-imbalance factor `max / mean`; 1.0 means perfectly balanced work and
/// equals the slowdown suffered by a synchronous all-DPU barrier relative to
/// ideal balancing.
pub fn imbalance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        1.0
    } else {
        max(xs) / m
    }
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Percentile (nearest-rank) of an unsorted slice, `p` in [0, 100].
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_leq_mean() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        assert!(geomean(&xs) <= mean(&xs));
    }

    #[test]
    fn imbalance_balanced_is_one() {
        assert!((imbalance(&[2.0, 2.0, 2.0]) - 1.0).abs() < 1e-12);
        let i = imbalance(&[1.0, 1.0, 4.0]);
        assert!((i - 2.0).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 1.0);
    }

    #[test]
    fn fractions_normalize_or_zero() {
        let fr = fractions(&[1.0, 3.0]);
        assert_eq!(fr, [0.25, 0.75]);
        assert_eq!(fractions(&[0.0, 0.0]), [0.0, 0.0]);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[5.0, 5.0]), 0.0);
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_basic() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
