//! Energy model: `E = P x t`, mirroring how the paper obtains energy from
//! Intel RAPL package counters and the per-DIMM power specification
//! (13.92 W per UPMEM PIM-DIMM, Section 5.2).

use crate::config::PimArch;

/// System-level power model for a PIM server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Host base power (CPU package + board), watts.
    pub host_w: f64,
    /// Power per PIM DIMM, watts.
    pub dimm_w: f64,
    /// Installed PIM DIMMs.
    pub n_dimms: usize,
}

impl EnergyModel {
    /// Model derived from an architecture description.
    pub fn for_arch(arch: &PimArch) -> Self {
        EnergyModel {
            host_w: arch.host_base_power_w,
            dimm_w: arch.dimm_power_w,
            n_dimms: arch.num_dimms(),
        }
    }

    /// Total system power in watts.
    pub fn power_w(&self) -> f64 {
        self.host_w + self.dimm_w * self.n_dimms as f64
    }

    /// Energy in joules for a run of `seconds`.
    pub fn energy_j(&self, seconds: f64) -> f64 {
        self.power_w() * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc25_server_power_above_cpu_alone() {
        let arch = PimArch::upmem_sc25();
        let e = EnergyModel::for_arch(&arch);
        // 20 DIMMs x 13.92 W on top of the host: the paper notes the UPMEM
        // server draws more power than the CPU server yet still wins on
        // energy thanks to speed.
        assert!(e.power_w() > 300.0, "power {}", e.power_w());
        assert_eq!(e.n_dimms, arch.num_dimms());
    }

    #[test]
    fn energy_linear_in_time() {
        let e = EnergyModel {
            host_w: 100.0,
            dimm_w: 10.0,
            n_dimms: 5,
        };
        assert!((e.energy_j(2.0) - 300.0).abs() < 1e-12);
    }
}
