//! Phase-resolved energy accounting for a PIM server.
//!
//! The paper obtains energy from Intel RAPL package counters plus the
//! per-DIMM power specification (13.92 W per UPMEM PIM-DIMM, Section 5.2),
//! and its core efficiency claim (Fig. 10) is that the PIM server wins on
//! energy *despite* higher power because execution time divides into
//! phases with very different energy costs. A flat `P × t` product cannot
//! reproduce that story, so this module meters energy per component from
//! the counters the simulator already keeps:
//!
//! * **DPU pipeline** — issue slots (plus lock serialisation) charged to
//!   the [`crate::meter::DpuMeter`], at an energy-per-cycle derived from
//!   the DIMM power budget;
//! * **MRAM** — streamed/random bytes plus a per-DMA-transfer activation
//!   cost (row activation + DMA setup);
//! * **WRAM** — scratchpad traffic at SRAM-class cost per byte;
//! * **CPU↔DPU transfer** — push/gather bytes over the DDR bus at DDR4
//!   I/O energy per byte;
//! * **host busy** — package power above idle while the host runs CL and
//!   the merge;
//! * **static** — background power (host idle + DIMM static/refresh) over
//!   the batch wall clock, for the *full configured* system: a real
//!   machine cannot power-gate unused MRAM, so scaled-down simulations
//!   still pay full static power (paper Section 5.2).
//!
//! The per-phase dynamic split ([`EnergyBreakdown::phase_dynamic_j`])
//! follows the same `Phase` axis as the latency breakdown of Fig. 9, so
//! the energy story can be read phase-by-phase next to the time story.
//!
//! **Determinism contract:** every component is a closed-form function of
//! merged meter counters and batch timing — no wall-clock measurement —
//! and [`EnergyBreakdown::total_j`] sums the components in one fixed
//! order. Breakdowns are therefore bit-identical at any host thread count
//! (extending the `charge_parity` contract).

use crate::config::PimArch;
use crate::meter::{DpuMeter, Phase};

/// Fraction of a PIM DIMM's power budget that is static (refresh, PHY,
/// leakage) rather than activity-proportional. DRAM background power is a
/// large share of DIMM power; UPMEM DIMMs additionally keep DPU clocks
/// running. The 55 % split keeps full-load totals at the measured DIMM
/// budget while letting idle phases show up as cheap.
pub const DIMM_STATIC_FRACTION: f64 = 0.55;

/// Split of the *dynamic* per-DPU budget across pipeline, MRAM and WRAM
/// when compute and both memory levels run flat out together (the
/// calibration point: a fully-busy DPU must not exceed its share of the
/// DIMM budget).
const PIPELINE_DYN_SHARE: f64 = 0.40;
const MRAM_DYN_SHARE: f64 = 0.45;
const WRAM_DYN_SHARE: f64 = 0.15;

/// Extra MRAM bursts' worth of energy charged per discrete DMA transfer
/// (row activation + DMA engine setup).
const ACTIVATION_BURSTS: f64 = 2.0;

/// DDR4 bus I/O energy per byte moved between host and PIM DIMMs
/// (~15 pJ/bit at the channel level).
pub const LINK_PJ_PER_BYTE: f64 = 120.0;

/// Activity-proportional share of the host package power charged while
/// the host runs CL/merge. The package's idle baseline
/// (`PimArch::host_base_power_w`) is already accrued in
/// [`EnergyBreakdown::static_j`] over the whole batch, so only the
/// dynamic (above-idle) share of the busy package is billed to
/// [`EnergyBreakdown::host_busy_j`] — charging the full package power
/// there would double-count idle.
pub const HOST_ACTIVE_FRACTION: f64 = 0.6;

/// Per-operation energy coefficients of one DPU plus the host link,
/// derived from an architecture description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCosts {
    /// Joules per pipeline issue slot (includes lock-serialisation slots).
    pub pipeline_j_per_cycle: f64,
    /// Joules per MRAM byte moved (either direction).
    pub mram_j_per_byte: f64,
    /// Joules per discrete MRAM DMA transfer (activation + setup).
    pub mram_j_per_transfer: f64,
    /// Joules per WRAM byte moved.
    pub wram_j_per_byte: f64,
    /// Joules per byte crossing the host↔PIM DDR bus.
    pub link_j_per_byte: f64,
    /// Static power of one PIM DIMM, watts.
    pub dimm_static_w: f64,
}

impl EnergyCosts {
    /// Coefficients calibrated against `arch`'s DIMM power budget: a DPU
    /// saturating its pipeline, MRAM stream and WRAM stream simultaneously
    /// draws exactly the dynamic share of `dimm_power_w / dpus_per_dimm`,
    /// and the static share accrues regardless of activity.
    pub fn for_arch(arch: &PimArch) -> Self {
        let dpu_w = arch.dpu_power_w();
        let dyn_w = (1.0 - DIMM_STATIC_FRACTION) * dpu_w;
        let mram_j_per_byte = MRAM_DYN_SHARE * dyn_w / arch.mram_bw_per_dpu;
        EnergyCosts {
            pipeline_j_per_cycle: PIPELINE_DYN_SHARE * dyn_w / arch.freq_hz,
            mram_j_per_byte,
            mram_j_per_transfer: ACTIVATION_BURSTS * arch.dma_burst_bytes as f64 * mram_j_per_byte,
            wram_j_per_byte: WRAM_DYN_SHARE * dyn_w / arch.wram_bw_per_dpu(),
            link_j_per_byte: LINK_PJ_PER_BYTE * 1e-12,
            dimm_static_w: DIMM_STATIC_FRACTION * arch.dimm_power_w,
        }
    }
}

/// Phase- and component-resolved energy of one executed batch, joules.
///
/// The six components partition the total: [`Self::total_j`] is their sum
/// in declaration order (a fixed-order `f64` chain, so the identity
/// `total == pipeline + mram + wram + transfer + host_busy + static` holds
/// *bit-exactly* — pinned by unit tests).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// DPU pipeline issue slots (incl. lock serialisation), all DPUs.
    pub dpu_pipeline_j: f64,
    /// MRAM traffic + row activations, all DPUs.
    pub dpu_mram_j: f64,
    /// WRAM traffic, all DPUs.
    pub dpu_wram_j: f64,
    /// Host↔DPU push + gather bytes over the DDR bus.
    pub transfer_j: f64,
    /// The active (above-idle, [`HOST_ACTIVE_FRACTION`]) share of the
    /// host package while CL/merge runs; the idle baseline is in
    /// `static_j`.
    pub host_busy_j: f64,
    /// Background power (host idle + DIMM static) over the batch wall
    /// clock, full configured system.
    pub static_j: f64,
    /// Dynamic DPU energy split by ANNS phase, [`Phase::ALL`] order
    /// (sums to `dpu_pipeline_j + dpu_mram_j + dpu_wram_j` up to
    /// reassociation; each entry is itself a fixed-order sum).
    pub phase_dynamic_j: [f64; 6],
}

impl EnergyBreakdown {
    /// Total batch energy: the six components summed in declaration order.
    pub fn total_j(&self) -> f64 {
        self.dpu_pipeline_j
            + self.dpu_mram_j
            + self.dpu_wram_j
            + self.transfer_j
            + self.host_busy_j
            + self.static_j
    }

    /// Activity-proportional energy (everything except `static_j`).
    pub fn dynamic_j(&self) -> f64 {
        self.dpu_pipeline_j + self.dpu_mram_j + self.dpu_wram_j + self.transfer_j + self.host_busy_j
    }

    /// Dynamic DPU energy of one ANNS phase.
    pub fn phase_j(&self, p: Phase) -> f64 {
        self.phase_dynamic_j[p.idx()]
    }

    /// Fraction of the dynamic DPU energy spent in `p`; 0 when no dynamic
    /// DPU energy was spent.
    pub fn phase_fraction(&self, p: Phase) -> f64 {
        crate::stats::fractions(&self.phase_dynamic_j)[p.idx()]
    }

    /// The six component fractions of the total, in declaration order
    /// (`[pipeline, mram, wram, transfer, host_busy, static]`); zeros when
    /// the total is zero.
    pub fn component_fractions(&self) -> [f64; 6] {
        crate::stats::fractions(&[
            self.dpu_pipeline_j,
            self.dpu_mram_j,
            self.dpu_wram_j,
            self.transfer_j,
            self.host_busy_j,
            self.static_j,
        ])
    }

    /// Queries per joule for a batch of `queries`.
    pub fn queries_per_joule(&self, queries: usize) -> f64 {
        queries as f64 / self.total_j().max(1e-12)
    }

    /// Energy-delay product (J·s) for a batch that took `total_s`.
    pub fn edp_js(&self, total_s: f64) -> f64 {
        self.total_j() * total_s
    }
}

/// System-level power/energy model for a PIM server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Host base power (CPU package idle + board), watts.
    pub host_w: f64,
    /// Power per PIM DIMM, watts (full-load budget).
    pub dimm_w: f64,
    /// Installed PIM DIMMs.
    pub n_dimms: usize,
    /// Per-operation energy coefficients.
    pub costs: EnergyCosts,
}

impl EnergyModel {
    /// Model derived from an architecture description.
    pub fn for_arch(arch: &PimArch) -> Self {
        EnergyModel {
            host_w: arch.host_base_power_w,
            dimm_w: arch.dimm_power_w,
            n_dimms: arch.num_dimms(),
            costs: EnergyCosts::for_arch(arch),
        }
    }

    /// Peak system power in watts (full-load DIMM budget; the flat-model
    /// upper reference).
    pub fn power_w(&self) -> f64 {
        self.host_w + self.dimm_w * self.n_dimms as f64
    }

    /// Background (static) power in watts: host idle plus DIMM static for
    /// every installed DIMM.
    pub fn static_power_w(&self) -> f64 {
        self.host_w + self.costs.dimm_static_w * self.n_dimms as f64
    }

    /// Flat upper-bound energy in joules for a run of `seconds` (every
    /// DIMM at full-load power for the whole run). The phase-resolved
    /// [`Self::breakdown`] always comes in at or below this.
    pub fn energy_j(&self, seconds: f64) -> f64 {
        self.power_w() * seconds
    }

    /// Phase-resolved energy of one batch.
    ///
    /// * `agg` — the per-phase meter aggregated over all instantiated DPUs;
    /// * `isa` — the cost table (converts lock acquisitions to slots);
    /// * `total_s` — batch wall clock (static energy window);
    /// * `host_s` — host busy time (CL + merge);
    /// * `host_power_w` — host *package* power while busy; only its
    ///   [`HOST_ACTIVE_FRACTION`] is billed here (idle stays in
    ///   `static_j`, so a full-package charge would double-count);
    /// * `xfer_bytes` — total push + gather bytes across the link.
    pub fn breakdown(
        &self,
        agg: &DpuMeter,
        isa: &crate::isa::IsaCosts,
        total_s: f64,
        host_s: f64,
        host_power_w: f64,
        xfer_bytes: u64,
    ) -> EnergyBreakdown {
        let c = &self.costs;
        let mut pipeline = 0.0f64;
        let mut mram = 0.0f64;
        let mut wram = 0.0f64;
        let mut phase_dynamic_j = [0.0f64; 6];
        for p in Phase::ALL {
            let m = agg.phase(p);
            let pj = m.compute_cycles(isa) as f64 * c.pipeline_j_per_cycle;
            let mj = m.mram_bytes() as f64 * c.mram_j_per_byte
                + m.mram_transfers as f64 * c.mram_j_per_transfer;
            let wj = m.wram_bytes() as f64 * c.wram_j_per_byte;
            pipeline += pj;
            mram += mj;
            wram += wj;
            phase_dynamic_j[p.idx()] = pj + mj + wj;
        }
        EnergyBreakdown {
            dpu_pipeline_j: pipeline,
            dpu_mram_j: mram,
            dpu_wram_j: wram,
            transfer_j: xfer_bytes as f64 * c.link_j_per_byte,
            host_busy_j: HOST_ACTIVE_FRACTION * host_power_w * host_s,
            static_j: self.static_power_w() * total_s,
            phase_dynamic_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::IsaCosts;

    fn model() -> EnergyModel {
        EnergyModel::for_arch(&PimArch::upmem_sc25())
    }

    #[test]
    fn sc25_server_power_above_cpu_alone() {
        let e = model();
        // 20 DIMMs x 13.92 W on top of the host: the paper notes the UPMEM
        // server draws more power than the CPU server yet still wins on
        // energy thanks to speed.
        assert!(e.power_w() > 300.0, "power {}", e.power_w());
        assert_eq!(e.n_dimms, PimArch::upmem_sc25().num_dimms());
        // static power is a strict fraction of peak
        assert!(e.static_power_w() < e.power_w());
        assert!(e.static_power_w() > e.host_w);
    }

    #[test]
    fn energy_linear_in_time() {
        let mut e = model();
        e.host_w = 100.0;
        e.dimm_w = 10.0;
        e.n_dimms = 5;
        assert!((e.energy_j(2.0) - 300.0).abs() < 1e-12);
    }

    #[test]
    fn fully_busy_dpu_stays_within_dimm_budget() {
        // A DPU saturating pipeline + MRAM + WRAM for one second draws the
        // dynamic share of its DIMM budget — never more.
        let arch = PimArch::upmem_sc25();
        let c = EnergyCosts::for_arch(&arch);
        let sec_pipeline = arch.freq_hz * c.pipeline_j_per_cycle;
        let sec_mram = arch.mram_bw_per_dpu * c.mram_j_per_byte;
        let sec_wram = arch.wram_bw_per_dpu() * c.wram_j_per_byte;
        let dyn_w = sec_pipeline + sec_mram + sec_wram;
        let budget = (1.0 - DIMM_STATIC_FRACTION) * arch.dpu_power_w();
        assert!(
            (dyn_w - budget).abs() / budget < 1e-9,
            "dyn {dyn_w} vs budget {budget}"
        );
    }

    #[test]
    fn components_sum_bit_exactly_to_total() {
        let e = model();
        let isa = IsaCosts::upmem();
        let mut agg = DpuMeter::new();
        agg.phase_mut(Phase::Lc).charge_add(1_234_567);
        agg.phase_mut(Phase::Lc).mram_stream_read(98_765);
        agg.phase_mut(Phase::Dc).wram_read_bytes(55_555);
        agg.phase_mut(Phase::Ts).lock_n(321);
        let b = e.breakdown(&agg, &isa, 0.0123, 0.0045, 100.0, 1 << 20);
        let resum = b.dpu_pipeline_j
            + b.dpu_mram_j
            + b.dpu_wram_j
            + b.transfer_j
            + b.host_busy_j
            + b.static_j;
        assert_eq!(b.total_j().to_bits(), resum.to_bits());
        // and the phase split re-sums to the DPU dynamic components
        let phase_sum: f64 = b.phase_dynamic_j.iter().sum();
        let dpu_dyn = b.dpu_pipeline_j + b.dpu_mram_j + b.dpu_wram_j;
        assert!((phase_sum - dpu_dyn).abs() < 1e-12 * dpu_dyn.max(1.0));
    }

    #[test]
    fn zero_work_batch_has_zero_dynamic_energy() {
        let e = model();
        let isa = IsaCosts::upmem();
        let b = e.breakdown(&DpuMeter::new(), &isa, 0.0, 0.0, 100.0, 0);
        assert_eq!(b.dynamic_j(), 0.0);
        assert_eq!(b.total_j(), 0.0);
        assert_eq!(b.phase_dynamic_j, [0.0; 6]);
        assert_eq!(b.component_fractions(), [0.0; 6]);
        // with a nonzero wall clock, only static energy accrues
        let b2 = e.breakdown(&DpuMeter::new(), &isa, 1.0, 0.0, 100.0, 0);
        assert_eq!(b2.dynamic_j(), 0.0);
        assert!((b2.total_j() - e.static_power_w()).abs() < 1e-9);
    }

    #[test]
    fn breakdown_stays_below_flat_upper_bound() {
        // one second of full-tilt work on 4 of 2543 DPUs: phase-resolved
        // total must come in below the flat every-DIMM-at-full-power bound
        let arch = PimArch::upmem_sc25();
        let e = EnergyModel::for_arch(&arch);
        let isa = IsaCosts::upmem();
        let mut agg = DpuMeter::new();
        for _ in 0..4 {
            let mut one = DpuMeter::new();
            one.phase_mut(Phase::Dc).charge_add(arch.freq_hz as u64);
            one.phase_mut(Phase::Dc)
                .mram_stream_read(arch.mram_bw_per_dpu as u64);
            agg.merge(&one);
        }
        let b = e.breakdown(&agg, &isa, 1.0, 0.5, 100.0, 1 << 24);
        assert!(
            b.total_j() < e.energy_j(1.0),
            "{} vs {}",
            b.total_j(),
            e.energy_j(1.0)
        );
    }

    #[test]
    fn phase_fractions_follow_work() {
        let e = model();
        let isa = IsaCosts::upmem();
        let mut agg = DpuMeter::new();
        agg.phase_mut(Phase::Dc).charge_add(3_000_000);
        agg.phase_mut(Phase::Lc).charge_add(1_000_000);
        let b = e.breakdown(&agg, &isa, 0.001, 0.0, 0.0, 0);
        assert!(b.phase_fraction(Phase::Dc) > b.phase_fraction(Phase::Lc));
        assert!((b.phase_fraction(Phase::Dc) - 0.75).abs() < 1e-9);
        assert_eq!(b.phase_fraction(Phase::Rc), 0.0);
    }

    #[test]
    fn locks_add_pipeline_energy() {
        let e = model();
        let isa = IsaCosts::upmem();
        let mut a = DpuMeter::new();
        a.phase_mut(Phase::Ts).charge_add(1000);
        let mut b = DpuMeter::new();
        b.phase_mut(Phase::Ts).charge_add(1000);
        b.phase_mut(Phase::Ts).lock_n(100);
        let ea = e.breakdown(&a, &isa, 0.0, 0.0, 0.0, 0);
        let eb = e.breakdown(&b, &isa, 0.0, 0.0, 0.0, 0);
        assert!(eb.dpu_pipeline_j > ea.dpu_pipeline_j);
    }

    #[test]
    fn random_access_costs_more_energy_than_streaming() {
        // same bytes, many transfers: activations make random access pay
        let e = model();
        let isa = IsaCosts::upmem();
        let mut stream = DpuMeter::new();
        stream.phase_mut(Phase::Dc).mram_stream_read(1 << 16);
        let mut random = DpuMeter::new();
        random.phase_mut(Phase::Dc).mram_random_read(1 << 13, 8, 8);
        let es = e.breakdown(&stream, &isa, 0.0, 0.0, 0.0, 0);
        let er = e.breakdown(&random, &isa, 0.0, 0.0, 0.0, 0);
        assert_eq!(
            stream.phase(Phase::Dc).mram_bytes(),
            random.phase(Phase::Dc).mram_bytes()
        );
        assert!(er.dpu_mram_j > 2.0 * es.dpu_mram_j);
    }

    #[test]
    fn qpj_and_edp_read_off_the_breakdown() {
        let b = EnergyBreakdown {
            dpu_pipeline_j: 1.0,
            dpu_mram_j: 1.0,
            dpu_wram_j: 0.5,
            transfer_j: 0.25,
            host_busy_j: 0.25,
            static_j: 2.0,
            phase_dynamic_j: [0.0; 6],
        };
        assert!((b.total_j() - 5.0).abs() < 1e-12);
        assert!((b.queries_per_joule(100) - 20.0).abs() < 1e-9);
        assert!((b.edp_js(2.0) - 10.0).abs() < 1e-12);
        let fr = b.component_fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((fr[5] - 0.4).abs() < 1e-12);
    }
}
