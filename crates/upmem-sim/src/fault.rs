//! Deterministic, seeded fault injection for the simulated PIM system.
//!
//! Three fault classes, mirroring what DIMM-scale deployments actually see:
//!
//! * **Fail-stop** — a DPU is permanently dead. The set is drawn once from
//!   the seed (a function of the DPU id only), modeling devices that a
//!   driver-side health scan finds dead at allocation time or that die and
//!   stay dead.
//! * **Straggler** — a DPU completes a batch, but slower by a factor drawn
//!   from a configurable [`SlowdownDist`] (thermal throttling, refresh
//!   interference, a slow rank). Transient: redrawn per `(batch, attempt)`.
//! * **Corruption** — a DPU's gathered results arrive damaged; detectable
//!   because every result block carries a [`result_checksum`]. Transient,
//!   redrawn per `(batch, attempt)`.
//! * **Rank fail-stop** — a whole rank (DIMM) of
//!   [`FaultConfig::dpus_per_rank`] consecutive DPUs dies at once, from
//!   batch [`FaultConfig::rank_kill_from_batch`] onward (a mid-run DIMM
//!   loss). The dead-rank set is drawn once from the seed as a function of
//!   the rank id only, so a killed rank stays dead for the rest of the run.
//!
//! **Determinism contract.** Every draw is a pure stateless hash of
//! `(seed, salt, dpu, batch, attempt)` — there is no shared RNG stream, so
//! outcomes do not depend on host thread count, dispatch order, or how many
//! draws other DPUs made. The same seed replays the same fault pattern,
//! bit-for-bit, at any parallelism. `FaultConfig::none()` (all rates zero)
//! yields `Healthy` everywhere and zero masks, making a wired-but-idle
//! injector indistinguishable from no injector at all.

/// Distribution of straggler slowdown factors (all factors are >= 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlowdownDist {
    /// Uniform in `[min, max]`.
    Uniform {
        /// Smallest slowdown factor (>= 1).
        min: f64,
        /// Largest slowdown factor (>= min).
        max: f64,
    },
    /// Bounded Pareto: heavy-tailed slowdowns (`scale` is the minimum,
    /// `alpha` the tail exponent), clipped at `cap` — the empirical shape
    /// of timeout-class stragglers.
    Pareto {
        /// Minimum slowdown factor (>= 1).
        scale: f64,
        /// Tail exponent (> 0); smaller = heavier tail.
        alpha: f64,
        /// Upper clip on the factor (>= scale).
        cap: f64,
    },
}

impl SlowdownDist {
    /// Map a uniform variate `u` in `[0,1)` to a slowdown factor.
    pub fn factor(&self, u: f64) -> f64 {
        match *self {
            SlowdownDist::Uniform { min, max } => min + u * (max - min),
            SlowdownDist::Pareto { scale, alpha, cap } => {
                // inverse CDF of Pareto(scale, alpha), clipped
                let x = scale / (1.0 - u).powf(1.0 / alpha);
                x.min(cap)
            }
        }
    }

    /// Validity check used by [`FaultConfig::validate`].
    fn validate(&self) -> Result<(), FaultConfigError> {
        let ok = match *self {
            SlowdownDist::Uniform { min, max } => min >= 1.0 && max >= min && max.is_finite(),
            SlowdownDist::Pareto { scale, alpha, cap } => {
                scale >= 1.0 && alpha > 0.0 && cap >= scale && cap.is_finite()
            }
        };
        if ok {
            Ok(())
        } else {
            Err(FaultConfigError::BadSlowdown)
        }
    }
}

impl Default for SlowdownDist {
    fn default() -> Self {
        SlowdownDist::Uniform { min: 1.5, max: 3.0 }
    }
}

/// Seeded fault-injection configuration. All rates are per-DPU
/// probabilities (fail-stop: once per DPU; straggler/corruption: per
/// dispatch wave).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Root seed of every draw.
    pub seed: u64,
    /// Probability a DPU is permanently dead.
    pub fail_stop_rate: f64,
    /// Per-wave probability a DPU straggles.
    pub straggler_rate: f64,
    /// Straggler slowdown distribution.
    pub slowdown: SlowdownDist,
    /// Per-wave probability a DPU's gathered results are corrupted.
    pub corruption_rate: f64,
    /// Probability a whole rank fail-stops. Requires a rank topology
    /// (`dpus_per_rank >= 1`) when nonzero.
    pub rank_fail_stop_rate: f64,
    /// Rank topology: DPU `d` belongs to rank `d / dpus_per_rank`.
    /// `0` means "no rank topology" (valid only while
    /// `rank_fail_stop_rate` is zero).
    pub dpus_per_rank: usize,
    /// Batch index from which drawn rank deaths take effect — the
    /// "mid-run" knob. `0` kills them from the start.
    pub rank_kill_from_batch: u64,
}

/// Rejected fault configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultConfigError {
    /// A rate is outside `[0, 1]` or not finite.
    BadRate,
    /// The slowdown distribution is malformed (factors must be >= 1).
    BadSlowdown,
    /// `rank_fail_stop_rate` is nonzero but no rank topology was given
    /// (`dpus_per_rank` is 0).
    MissingRankTopology,
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfigError::BadRate => write!(f, "fault rates must lie in [0, 1]"),
            FaultConfigError::BadSlowdown => {
                write!(f, "slowdown distribution must produce factors >= 1")
            }
            FaultConfigError::MissingRankTopology => {
                write!(
                    f,
                    "rank_fail_stop_rate requires dpus_per_rank >= 1 (a rank topology)"
                )
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

impl FaultConfig {
    /// All rates zero: a present-but-inert injector.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            fail_stop_rate: 0.0,
            straggler_rate: 0.0,
            slowdown: SlowdownDist::default(),
            corruption_rate: 0.0,
            rank_fail_stop_rate: 0.0,
            dpus_per_rank: 0,
            rank_kill_from_batch: 0,
        }
    }

    /// Every fault class at `rate` with the default slowdown distribution —
    /// the CI fault-matrix configuration. Rank faults stay off.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            fail_stop_rate: rate,
            straggler_rate: rate,
            slowdown: SlowdownDist::default(),
            corruption_rate: rate,
            ..FaultConfig::none()
        }
    }

    /// Rank-failure-only configuration over a `dpus_per_rank` topology:
    /// each rank dies with probability `rate`, from `from_batch` onward.
    pub fn rank_kill(seed: u64, rate: f64, dpus_per_rank: usize, from_batch: u64) -> Self {
        FaultConfig {
            seed,
            rank_fail_stop_rate: rate,
            dpus_per_rank,
            rank_kill_from_batch: from_batch,
            ..FaultConfig::none()
        }
    }

    /// Check rates, the slowdown distribution, and the rank topology.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for r in [
            self.fail_stop_rate,
            self.straggler_rate,
            self.corruption_rate,
            self.rank_fail_stop_rate,
        ] {
            if !(0.0..=1.0).contains(&r) || !r.is_finite() {
                return Err(FaultConfigError::BadRate);
            }
        }
        if self.rank_fail_stop_rate > 0.0 && self.dpus_per_rank == 0 {
            return Err(FaultConfigError::MissingRankTopology);
        }
        self.slowdown.validate()
    }
}

/// Outcome of dispatching one wave of work to one DPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultOutcome {
    /// Normal completion.
    Healthy,
    /// The DPU is dead: nothing executes, nothing returns.
    FailStop,
    /// The DPU completes, slower by the carried factor.
    Straggler(f64),
    /// The DPU completes but its gathered results fail the checksum.
    Corrupt,
}

const SALT_FAIL_STOP: u64 = 0xFA11_5707;
const SALT_RANK_FAIL_STOP: u64 = 0xDEAD_D133;
const SALT_STRAGGLER: u64 = 0x57A6_6153;
const SALT_SLOWDOWN: u64 = 0x510E_D0E1;
const SALT_CORRUPT: u64 = 0xC0EE_0B71;

// The stateless mixing primitive behind every draw lived here privately
// until the workspace grew a second and third consumer; it is now the
// shared `ann_core::hash::mix64` (bit-identical, pinned by tests there).
use ann_core::hash::mix64 as mix;

/// Fold a stream of words into a detection checksum (order-sensitive, so
/// reordered or damaged result blocks change it).
pub fn result_checksum(words: impl IntoIterator<Item = u64>) -> u64 {
    ann_core::hash::hash_words(0x5EED_C8EC_5EED_C8EC, words)
}

/// The injector: pure functions from `(dpu, batch, attempt)` to outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

impl FaultInjector {
    /// Wrap a validated configuration.
    pub fn new(cfg: FaultConfig) -> Result<Self, FaultConfigError> {
        cfg.validate()?;
        Ok(FaultInjector { cfg })
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when every rate is zero (injector wired but inert).
    pub fn is_inert(&self) -> bool {
        self.cfg.fail_stop_rate == 0.0
            && self.cfg.straggler_rate == 0.0
            && self.cfg.corruption_rate == 0.0
            && self.cfg.rank_fail_stop_rate == 0.0
    }

    fn unit(&self, salt: u64, dpu: u64, batch: u64, attempt: u64) -> f64 {
        let z = mix(self.cfg.seed ^ mix(salt ^ mix(dpu ^ mix(batch ^ mix(attempt)))));
        // 53 high bits -> uniform in [0, 1)
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Is DPU `dpu` permanently dead? A function of the seed and id only.
    pub fn is_fail_stop(&self, dpu: usize) -> bool {
        self.cfg.fail_stop_rate > 0.0
            && self.unit(SALT_FAIL_STOP, dpu as u64, 0, 0) < self.cfg.fail_stop_rate
    }

    /// The rank a DPU belongs to, or `None` without a rank topology.
    pub fn rank_of(&self, dpu: usize) -> Option<usize> {
        (self.cfg.dpus_per_rank > 0).then(|| dpu / self.cfg.dpus_per_rank)
    }

    /// Is `rank` fail-stopped as of batch `batch`? The dead-rank set is a
    /// static draw (function of the seed and rank id only); `batch` decides
    /// whether the mid-run kill has happened yet.
    pub fn is_rank_fail_stop(&self, rank: usize, batch: u64) -> bool {
        self.cfg.rank_fail_stop_rate > 0.0
            && batch >= self.cfg.rank_kill_from_batch
            && self.unit(SALT_RANK_FAIL_STOP, rank as u64, 0, 0) < self.cfg.rank_fail_stop_rate
    }

    /// Is `dpu` dead at batch `batch` — either individually fail-stopped or
    /// resident on a rank that has been killed by then?
    pub fn is_fail_stop_at(&self, dpu: usize, batch: u64) -> bool {
        self.is_fail_stop(dpu)
            || self
                .rank_of(dpu)
                .is_some_and(|r| self.is_rank_fail_stop(r, batch))
    }

    /// Dead ranks as of batch `batch` over a fleet of `ndpus` DPUs.
    pub fn dead_ranks_at(&self, ndpus: usize, batch: u64) -> usize {
        if self.cfg.dpus_per_rank == 0 {
            return 0;
        }
        let ranks = ndpus.div_ceil(self.cfg.dpus_per_rank);
        (0..ranks)
            .filter(|&r| self.is_rank_fail_stop(r, batch))
            .count()
    }

    /// Outcome of dispatching to `dpu` in wave `attempt` of batch `batch`.
    /// At most one fault fires per dispatch; fail-stop (per-DPU or rank)
    /// dominates.
    pub fn outcome(&self, dpu: usize, batch: u64, attempt: u32) -> FaultOutcome {
        if self.is_fail_stop_at(dpu, batch) {
            return FaultOutcome::FailStop;
        }
        let (d, b, a) = (dpu as u64, batch, attempt as u64);
        if self.cfg.straggler_rate > 0.0
            && self.unit(SALT_STRAGGLER, d, b, a) < self.cfg.straggler_rate
        {
            let u = self.unit(SALT_SLOWDOWN, d, b, a);
            return FaultOutcome::Straggler(self.cfg.slowdown.factor(u));
        }
        if self.cfg.corruption_rate > 0.0
            && self.unit(SALT_CORRUPT, d, b, a) < self.cfg.corruption_rate
        {
            return FaultOutcome::Corrupt;
        }
        FaultOutcome::Healthy
    }

    /// XOR mask the "link" applies to the transmitted checksum of this
    /// dispatch: nonzero exactly when the outcome is [`FaultOutcome::Corrupt`],
    /// so recomputing the checksum over the gathered payload exposes the
    /// damage.
    pub fn corrupt_mask(&self, dpu: usize, batch: u64, attempt: u32) -> u64 {
        match self.outcome(dpu, batch, attempt) {
            FaultOutcome::Corrupt => {
                mix(self.cfg.seed ^ SALT_CORRUPT ^ mix(dpu as u64 ^ batch ^ attempt as u64)) | 1
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(rate: f64) -> FaultInjector {
        FaultInjector::new(FaultConfig::uniform(0xDEAD, rate)).unwrap()
    }

    #[test]
    fn draws_are_deterministic_and_stateless() {
        let a = injector(0.3);
        let b = injector(0.3);
        for dpu in 0..64 {
            for batch in 0..4 {
                assert_eq!(a.outcome(dpu, batch, 0), b.outcome(dpu, batch, 0));
                assert_eq!(a.outcome(dpu, batch, 1), b.outcome(dpu, batch, 1));
            }
        }
        // querying in any order gives the same answers (no hidden stream)
        let forward: Vec<_> = (0..32).map(|d| a.outcome(d, 7, 0)).collect();
        let backward: Vec<_> = (0..32).rev().map(|d| a.outcome(d, 7, 0)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn zero_rates_are_inert() {
        let inj = FaultInjector::new(FaultConfig::none()).unwrap();
        assert!(inj.is_inert());
        for dpu in 0..256 {
            assert_eq!(inj.outcome(dpu, 3, 0), FaultOutcome::Healthy);
            assert_eq!(inj.corrupt_mask(dpu, 3, 0), 0);
            assert!(!inj.is_fail_stop(dpu));
        }
    }

    #[test]
    fn fail_stop_set_is_static_and_rate_matched() {
        let inj = injector(0.05);
        let dead: Vec<usize> = (0..10_000).filter(|&d| inj.is_fail_stop(d)).collect();
        let frac = dead.len() as f64 / 10_000.0;
        assert!((0.03..0.07).contains(&frac), "fail-stop fraction {frac}");
        // dead stays dead regardless of batch/attempt
        for &d in dead.iter().take(16) {
            assert_eq!(inj.outcome(d, 9, 3), FaultOutcome::FailStop);
        }
    }

    #[test]
    fn transient_faults_vary_with_batch_and_attempt() {
        let inj = injector(0.25);
        let per_batch: Vec<_> = (0..64).map(|b| inj.outcome(3, b, 0)).collect();
        let distinct: std::collections::HashSet<_> =
            per_batch.iter().map(|o| format!("{o:?}")).collect();
        assert!(distinct.len() > 1, "outcomes must vary across batches");
    }

    #[test]
    fn straggler_factors_respect_distribution() {
        let mut cfg = FaultConfig::uniform(7, 0.0);
        cfg.straggler_rate = 1.0;
        cfg.slowdown = SlowdownDist::Uniform { min: 2.0, max: 4.0 };
        let inj = FaultInjector::new(cfg).unwrap();
        for d in 0..256 {
            match inj.outcome(d, 0, 0) {
                FaultOutcome::Straggler(f) => assert!((2.0..=4.0).contains(&f), "factor {f}"),
                o => panic!("expected straggler, got {o:?}"),
            }
        }
        let mut cfg = FaultConfig::uniform(7, 0.0);
        cfg.straggler_rate = 1.0;
        cfg.slowdown = SlowdownDist::Pareto {
            scale: 1.5,
            alpha: 1.2,
            cap: 16.0,
        };
        let inj = FaultInjector::new(cfg).unwrap();
        let mut maxed = 0;
        for d in 0..4096 {
            match inj.outcome(d, 0, 0) {
                FaultOutcome::Straggler(f) => {
                    assert!((1.5..=16.0).contains(&f), "factor {f}");
                    if f > 8.0 {
                        maxed += 1;
                    }
                }
                o => panic!("expected straggler, got {o:?}"),
            }
        }
        assert!(maxed > 0, "Pareto tail should reach past 8x");
    }

    #[test]
    fn corruption_is_detectable_via_checksum() {
        let mut cfg = FaultConfig::uniform(11, 0.0);
        cfg.corruption_rate = 1.0;
        let inj = FaultInjector::new(cfg).unwrap();
        let payload = [1u64, 2, 3, 4];
        let local = result_checksum(payload);
        let wire = local ^ inj.corrupt_mask(5, 2, 0);
        assert_ne!(wire, local, "corruption must flip the checksum");
        // a healthy dispatch leaves the checksum intact
        let healthy = FaultInjector::new(FaultConfig::none()).unwrap();
        assert_eq!(local ^ healthy.corrupt_mask(5, 2, 0), local);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(result_checksum([1u64, 2, 3]), result_checksum([3u64, 2, 1]),);
        assert_eq!(result_checksum([]), result_checksum([]));
    }

    #[test]
    fn rank_kill_takes_whole_ranks_from_its_batch() {
        // 16 DPUs in 4 ranks; high rate so some rank dies for this seed
        let inj = FaultInjector::new(FaultConfig::rank_kill(0xD1, 0.5, 4, 3)).unwrap();
        assert!(!inj.is_inert());
        let dead_ranks: Vec<usize> = (0..4).filter(|&r| inj.is_rank_fail_stop(r, 3)).collect();
        assert!(!dead_ranks.is_empty(), "50% over 4 ranks should kill one");
        assert!(dead_ranks.len() < 4, "and should not kill all of them");
        assert_eq!(inj.dead_ranks_at(16, 3), dead_ranks.len());
        // before the kill batch, nothing is dead
        for d in 0..16 {
            assert!(!inj.is_fail_stop_at(d, 2), "dpu {d} dead before the kill");
            assert_eq!(inj.outcome(d, 2, 0), FaultOutcome::Healthy);
        }
        assert_eq!(inj.dead_ranks_at(16, 2), 0);
        // from the kill batch on, every DPU of a dead rank is dead together
        for d in 0..16 {
            let rank_dead = dead_ranks.contains(&(d / 4));
            assert_eq!(inj.is_fail_stop_at(d, 3), rank_dead);
            assert_eq!(inj.is_fail_stop_at(d, 99), rank_dead, "dead stays dead");
            if rank_dead {
                assert_eq!(inj.outcome(d, 7, 1), FaultOutcome::FailStop);
            }
            // the per-DPU draw is untouched by rank faults
            assert!(!inj.is_fail_stop(d));
        }
        assert_eq!(inj.rank_of(7), Some(1));
        let no_topo = FaultInjector::new(FaultConfig::none()).unwrap();
        assert_eq!(no_topo.rank_of(7), None);
        assert_eq!(no_topo.dead_ranks_at(16, 9), 0);
    }

    #[test]
    fn zero_rank_rate_leaves_dpu_draws_bit_identical() {
        // attaching a rank topology without a rank rate must not change any
        // outcome relative to the plain per-DPU configuration
        let plain = injector(0.3);
        let mut cfg = FaultConfig::uniform(0xDEAD, 0.3);
        cfg.dpus_per_rank = 8;
        let topo = FaultInjector::new(cfg).unwrap();
        for d in 0..64 {
            for b in 0..4 {
                assert_eq!(plain.outcome(d, b, 0), topo.outcome(d, b, 0));
                assert_eq!(plain.is_fail_stop_at(d, b), topo.is_fail_stop_at(d, b));
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = FaultConfig::none();
        cfg.fail_stop_rate = 1.5;
        assert_eq!(cfg.validate(), Err(FaultConfigError::BadRate));
        let mut cfg = FaultConfig::none();
        cfg.corruption_rate = -0.1;
        assert_eq!(cfg.validate(), Err(FaultConfigError::BadRate));
        let mut cfg = FaultConfig::none();
        cfg.slowdown = SlowdownDist::Uniform { min: 0.5, max: 2.0 };
        assert_eq!(cfg.validate(), Err(FaultConfigError::BadSlowdown));
        let mut cfg = FaultConfig::none();
        cfg.slowdown = SlowdownDist::Pareto {
            scale: 2.0,
            alpha: 1.0,
            cap: 1.0,
        };
        assert!(FaultInjector::new(cfg).is_err());
    }
}
