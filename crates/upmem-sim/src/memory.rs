//! Capacity tracking for the per-DPU memory hierarchy.
//!
//! The simulator keeps *data* in ordinary Rust structures owned by the
//! application (typed, cheap to access); what must be modelled faithfully is
//! *capacity*: a DPU has exactly 64 MiB of MRAM and 64 KiB of WRAM, and
//! DRIM-ANN's layout optimizer must respect both (cluster slices + metadata
//! in MRAM, hot buffers in WRAM). [`MemTracker`] provides named segment
//! allocation with overflow errors.

use std::collections::BTreeMap;
use std::fmt;

/// Error returned when an allocation would exceed the region's capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityError {
    /// Segment that failed to allocate.
    pub segment: String,
    /// Requested size in bytes.
    pub requested: u64,
    /// Bytes still available.
    pub available: u64,
    /// Total region capacity.
    pub capacity: u64,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segment `{}` needs {} B but only {} B of {} B remain",
            self.segment, self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for CapacityError {}

/// A fixed-capacity memory region with named segments.
///
/// Segment names let tests and reports inspect what occupies a DPU's MRAM or
/// WRAM (e.g. `"codes"`, `"sqt"`, `"lut"`, `"topk"`).
#[derive(Debug, Clone, Default)]
pub struct MemTracker {
    capacity: u64,
    segments: BTreeMap<String, u64>,
}

impl MemTracker {
    /// New region with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemTracker {
            capacity,
            segments: BTreeMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.segments.values().sum()
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Allocate (or grow) the named segment by `bytes`.
    pub fn alloc(&mut self, segment: &str, bytes: u64) -> Result<(), CapacityError> {
        if bytes > self.free() {
            return Err(CapacityError {
                segment: segment.to_string(),
                requested: bytes,
                available: self.free(),
                capacity: self.capacity,
            });
        }
        *self.segments.entry(segment.to_string()).or_insert(0) += bytes;
        Ok(())
    }

    /// Set the named segment to exactly `bytes` (replacing any prior size).
    pub fn set(&mut self, segment: &str, bytes: u64) -> Result<(), CapacityError> {
        let current = self.segments.get(segment).copied().unwrap_or(0);
        let others = self.used() - current;
        if others + bytes > self.capacity {
            return Err(CapacityError {
                segment: segment.to_string(),
                requested: bytes,
                available: self.capacity - others,
                capacity: self.capacity,
            });
        }
        self.segments.insert(segment.to_string(), bytes);
        Ok(())
    }

    /// Release the named segment entirely, returning its size.
    pub fn release(&mut self, segment: &str) -> u64 {
        self.segments.remove(segment).unwrap_or(0)
    }

    /// Size of the named segment (0 if absent).
    pub fn segment(&self, segment: &str) -> u64 {
        self.segments.get(segment).copied().unwrap_or(0)
    }

    /// Iterate over `(name, bytes)` pairs in name order.
    pub fn segments(&self) -> impl Iterator<Item = (&str, u64)> {
        self.segments.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Remove all segments.
    pub fn clear(&mut self) {
        self.segments.clear();
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used() as f64 / self.capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_accounting() {
        let mut m = MemTracker::new(100);
        m.alloc("a", 40).unwrap();
        m.alloc("b", 30).unwrap();
        assert_eq!(m.used(), 70);
        assert_eq!(m.free(), 30);
        assert_eq!(m.segment("a"), 40);
        assert_eq!(m.release("a"), 40);
        assert_eq!(m.used(), 30);
    }

    #[test]
    fn alloc_grows_existing_segment() {
        let mut m = MemTracker::new(100);
        m.alloc("a", 10).unwrap();
        m.alloc("a", 15).unwrap();
        assert_eq!(m.segment("a"), 25);
    }

    #[test]
    fn overflow_is_rejected_with_context() {
        let mut m = MemTracker::new(64);
        m.alloc("codes", 60).unwrap();
        let err = m.alloc("lut", 10).unwrap_err();
        assert_eq!(err.requested, 10);
        assert_eq!(err.available, 4);
        assert_eq!(err.segment, "lut");
        assert!(err.to_string().contains("lut"));
    }

    #[test]
    fn set_replaces_size() {
        let mut m = MemTracker::new(100);
        m.set("x", 80).unwrap();
        m.set("x", 20).unwrap();
        assert_eq!(m.used(), 20);
        assert!(m.set("x", 101).is_err());
        // failed set leaves state untouched
        assert_eq!(m.segment("x"), 20);
    }

    #[test]
    fn utilization_fraction() {
        let mut m = MemTracker::new(200);
        assert_eq!(m.utilization(), 0.0);
        m.alloc("half", 100).unwrap();
        assert!((m.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_region() {
        let mut m = MemTracker::new(0);
        assert_eq!(m.utilization(), 0.0);
        assert!(m.alloc("x", 1).is_err());
        assert!(m.alloc("x", 0).is_ok());
    }
}
