//! Epoch-boundary mutation parity: after ANY sequence of streaming
//! inserts, deletes, and maintenance passes, an engine must return
//! results bit-identical to a from-scratch build over the same logical
//! corpus — at every host thread count.
//!
//! This is the strongest statement of the streaming design's contract:
//! tombstones, tail-slice appends, compaction, overgrown-list splits and
//! cross-DPU migrations all change the *physical* layout, but the TS
//! Forwarding prune is tie-inclusive and `dc::run` scans every candidate,
//! so per-DPU top-k is a pure function of the candidate *set* and the
//! global merge is partition-invariant. The fresh baseline replays the
//! same logical ops against a plain `IvfPqIndex` (whose `insert`/`remove`
//! are order-preserving and use the same centroid-assignment path), so
//! both sides hold the same logical corpus in the same per-cluster order.

use ann_core::ivf::{IvfPqIndex, IvfPqParams};
use ann_core::topk::Neighbor;
use ann_core::vector::VecSet;
use drim_ann::config::{EngineConfig, IndexConfig};
use drim_ann::engine::DrimEngine;
use rayon::with_num_threads;
use upmem_sim::PimArch;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const NDPUS: usize = 8;

fn index_cfg() -> IndexConfig {
    IndexConfig {
        k: 10,
        nprobe: 8,
        nlist: 32,
        m: 8,
        cb: 16,
    }
}

fn workload() -> (VecSet<f32>, VecSet<f32>, VecSet<f32>) {
    let spec = datasets::SynthSpec::small("mutation-parity", 16, 1500, 31);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        24,
        datasets::queries::QuerySkew::InDistribution,
        4,
    );
    // Fresh points to stream in, drawn from the same distribution but a
    // different seed so they are genuinely new vectors.
    let fresh = datasets::generate(&datasets::SynthSpec::small(
        "mutation-parity-new",
        16,
        64,
        77,
    ));
    (data, queries, fresh)
}

/// One logical mutation, replayable against both a live engine and a
/// plain index.
#[derive(Clone)]
enum Op {
    Insert(u32, Vec<f32>),
    Delete(u32),
}

fn apply_to_engine(engine: &mut DrimEngine, ops: &[Op]) {
    for op in ops {
        let before = engine.epoch();
        match op {
            Op::Insert(id, v) => engine.insert(*id, v).expect("engine insert"),
            Op::Delete(id) => assert!(engine.delete(*id), "delete of a live id"),
        }
        assert!(engine.epoch() > before, "every mutation bumps the epoch");
    }
}

/// From-scratch build over the post-mutation logical corpus: rebuild the
/// index over the ORIGINAL data (identical coarse centroids and PQ
/// codebooks — training is deterministic and sees the same input), then
/// replay the logical ops through the index's own order-preserving
/// `insert`/`remove`.
fn fresh_baseline(data0: &VecSet<f32>, ops: &[Op], cfg: EngineConfig) -> DrimEngine {
    let params = IvfPqParams::new(cfg.index.nlist)
        .m(cfg.index.m)
        .cb(cfg.index.cb);
    let mut idx = IvfPqIndex::build(data0, &params);
    for op in ops {
        match op {
            Op::Insert(id, v) => idx.insert(*id, v),
            Op::Delete(id) => assert!(idx.remove(*id), "baseline replay of a live id"),
        }
    }
    DrimEngine::from_index(idx, data0, cfg, PimArch::upmem_sc25(), NDPUS, None)
        .expect("baseline engine")
}

/// Bit-exact key for a result set: ids plus raw f32 distance bits.
fn result_bits(rs: &[Vec<Neighbor>]) -> Vec<Vec<(u64, u32)>> {
    rs.iter()
        .map(|l| l.iter().map(|n| (n.id, n.dist.to_bits())).collect())
        .collect()
}

fn assert_parity(mutated: &mut DrimEngine, baseline: &mut DrimEngine, queries: &VecSet<f32>) {
    let (b, _) = with_num_threads(1, || baseline.search_batch(queries));
    let want = result_bits(&b);
    for threads in THREAD_COUNTS {
        let (m, _) = with_num_threads(threads, || mutated.search_batch(queries));
        assert_eq!(
            result_bits(&m),
            want,
            "mutated engine diverged from fresh build at host_threads={threads}"
        );
        // The baseline itself is thread-invariant too (guards against a
        // parity "pass" where both sides drift identically with threads).
        let (b_t, _) = with_num_threads(threads, || baseline.search_batch(queries));
        assert_eq!(result_bits(&b_t), want, "baseline drifted at {threads}");
    }
}

/// Deletes spread across clusters plus fresh inserts: the mutated engine
/// (tombstones + tail appends) matches a from-scratch build replaying the
/// same logical ops, at 1/2/4/8 host threads.
#[test]
fn insert_delete_sequence_matches_fresh_build() {
    let (data, queries, fresh) = workload();
    let cfg = EngineConfig::drim(index_cfg());
    let mut engine =
        DrimEngine::build(&data, cfg.clone(), PimArch::upmem_sc25(), NDPUS, None).unwrap();

    // Interleave: delete every 90th base id, insert fresh points at new
    // ids — the interleaving exercises tombstone-then-append on the same
    // clusters.
    let mut ops = Vec::new();
    for i in 0..16u32 {
        ops.push(Op::Delete(i * 90));
        ops.push(Op::Insert(1_000_000 + i, fresh.get(i as usize).to_vec()));
    }
    apply_to_engine(&mut engine, &ops);
    assert_eq!(engine.live_len(), data.len(), "16 in, 16 out");

    let mut baseline = fresh_baseline(&data, &ops, cfg);
    assert_parity(&mut engine, &mut baseline, &queries);
}

/// Compaction and maintenance are results-neutral: after churn, forcing a
/// maintenance pass (aggressive compaction threshold) physically rewrites
/// lists and frees MRAM but must not move a single result bit relative to
/// the fresh build.
#[test]
fn maintenance_after_churn_preserves_parity() {
    let (data, queries, fresh) = workload();
    let mut cfg = EngineConfig::drim(index_cfg());
    cfg.maintenance.compact_tombstone_frac = 1e-9; // compact on any tombstone
    let mut engine =
        DrimEngine::build(&data, cfg.clone(), PimArch::upmem_sc25(), NDPUS, None).unwrap();

    let mut ops = Vec::new();
    for i in 0..40u32 {
        ops.push(Op::Delete(i * 37));
    }
    for i in 0..8u32 {
        ops.push(Op::Insert(2_000_000 + i, fresh.get(i as usize).to_vec()));
    }
    apply_to_engine(&mut engine, &ops);

    assert_eq!(engine.pending_tombstones(), 40);
    let epoch_before = engine.epoch();
    let rep = engine.maintain();
    assert_eq!(rep.purged_points, 40);
    // Compaction alone never bumps the epoch; only splits/migrations do,
    // and each swap bumps it exactly once.
    assert_eq!(engine.epoch(), epoch_before + rep.epoch_swaps as u64);
    assert_eq!(engine.pending_tombstones(), 0);

    let mut baseline = fresh_baseline(&data, &ops, cfg);
    assert_parity(&mut engine, &mut baseline, &queries);
}

/// Delete-then-reinsert of the same id: the engine compacts the stale
/// code before appending, the baseline's `remove` + `insert` lands the
/// point at its cluster's tail — both sides converge on the same logical
/// order and the same bits.
#[test]
fn reinsert_after_delete_matches_fresh_build() {
    let (data, queries, _) = workload();
    let cfg = EngineConfig::drim(index_cfg());
    let mut engine =
        DrimEngine::build(&data, cfg.clone(), PimArch::upmem_sc25(), NDPUS, None).unwrap();

    let mut ops = Vec::new();
    for id in [3u32, 500, 777, 1200] {
        ops.push(Op::Delete(id));
        ops.push(Op::Insert(id, data.get(id as usize).to_vec()));
    }
    apply_to_engine(&mut engine, &ops);
    assert_eq!(engine.live_len(), data.len());

    let mut baseline = fresh_baseline(&data, &ops, cfg);
    assert_parity(&mut engine, &mut baseline, &queries);
}

/// Hammering one cluster with near-identical inserts forces overgrown-
/// list splits and (under the byte-balance trigger) a cross-DPU
/// migration; the double-buffered epoch swap must leave results
/// bit-identical to a fresh build that never split anything.
#[test]
fn split_and_migration_preserve_parity() {
    let (data, queries, _) = workload();
    let mut cfg = EngineConfig::drim(index_cfg());
    cfg.maintenance.overgrown_factor = 1.5;
    cfg.maintenance.max_migrations = 2;
    let mut engine =
        DrimEngine::build(&data, cfg.clone(), PimArch::upmem_sc25(), NDPUS, None).unwrap();

    // Pile ~300 near-duplicates of one base point into a single cluster.
    let anchor = data.get(10).to_vec();
    let mut ops = Vec::new();
    for i in 0..300u32 {
        let mut v = anchor.clone();
        // Tiny deterministic jitter keeps them distinct but co-clustered.
        v[(i % 16) as usize] += 1e-4 * (i as f32 + 1.0);
        ops.push(Op::Insert(3_000_000 + i, v));
    }
    apply_to_engine(&mut engine, &ops);

    let epoch_before = engine.epoch();
    let rep = engine.maintain();
    assert!(
        rep.split_slices + rep.migrated_slices > 0,
        "skewed load must trigger a split or migration: {rep:?}"
    );
    assert_eq!(engine.epoch(), epoch_before + rep.epoch_swaps as u64);
    assert!(rep.epoch_swaps > 0, "every split/migration swaps the epoch");

    let mut baseline = fresh_baseline(&data, &ops, cfg);
    assert_parity(&mut engine, &mut baseline, &queries);
}
