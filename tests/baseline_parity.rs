//! Baseline parity: the CPU reference scan, the engine, and the exact
//! search must agree on quality, and the cross-platform models must keep
//! the paper's ordering.

use baselines::cpu::{CpuIvfPq, CpuModel};
use baselines::gpu::GpuModel;
use drim_ann::config::{EngineConfig, IndexConfig};
use drim_ann::engine::DrimEngine;
use drim_ann::perf_model::{BitWidths, WorkloadShape};
use upmem_sim::PimArch;

#[test]
fn cpu_reference_equals_index_search_exactly() {
    let spec = datasets::SynthSpec::small("parity", 16, 3_000, 21);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        16,
        datasets::queries::QuerySkew::InDistribution,
        5,
    );
    let params = ann_core::ivf::IvfPqParams::new(64).m(8).cb(32);
    let cpu = CpuIvfPq::build(&data, &params);
    let direct = ann_core::ivf::IvfPqIndex::build(&data, &params);
    let batch = cpu.search_batch(&queries, 8, 10);
    for (qi, batch_result) in batch.iter().enumerate() {
        let single = direct.search(queries.get(qi), 8, 10);
        let a: Vec<u64> = batch_result.iter().map(|n| n.id).collect();
        let b: Vec<u64> = single.iter().map(|n| n.id).collect();
        assert_eq!(a, b, "query {qi}");
    }
}

#[test]
fn engine_recall_close_to_cpu_baseline_recall() {
    let spec = datasets::SynthSpec::small("parity2", 24, 8_000, 23);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        32,
        datasets::queries::QuerySkew::InDistribution,
        9,
    );
    let truth = ann_core::flat::ground_truth(&queries, &data, 10);
    let index = IndexConfig {
        k: 10,
        nprobe: 16,
        nlist: 64,
        m: 8,
        cb: 64,
    };
    let params = ann_core::ivf::IvfPqParams::new(index.nlist)
        .m(index.m)
        .cb(index.cb);
    let cpu = CpuIvfPq::build(&data, &params);
    let cpu_recall = ann_core::recall::mean_recall(
        &cpu.search_batch(&queries, index.nprobe, index.k),
        &truth,
        10,
    );
    let mut engine = DrimEngine::from_index(
        cpu.index.clone(),
        &data,
        EngineConfig::drim(index),
        PimArch::upmem_sc25(),
        16,
        None,
    )
    .unwrap();
    let (results, _) = engine.search_batch(&queries);
    let engine_recall = ann_core::recall::mean_recall(&results, &truth, 10);
    assert!(
        (engine_recall - cpu_recall).abs() < 0.12,
        "engine {engine_recall} vs cpu {cpu_recall}"
    );
}

#[test]
fn platform_ordering_matches_the_paper() {
    // Paper Section 5.4 on SIFT100M-class workloads:
    //   Faiss-CPU < DRIM-ANN/UPMEM < Faiss-GPU
    let index = IndexConfig {
        k: 10,
        nprobe: 96,
        nlist: 1 << 14,
        m: 16,
        cb: 256,
    };
    let shape_f32 = WorkloadShape::new(100_000_000, 2000, 128, &index, BitWidths::f32_regime());
    let cpu_qps = CpuModel::xeon_gold_5218().qps(&shape_f32);
    let gpu_qps = GpuModel::a100().qps(&shape_f32, 100_000_000 * 128).unwrap();
    assert!(
        gpu_qps > 8.0 * cpu_qps,
        "GPU {gpu_qps} should dwarf CPU {cpu_qps}"
    );
}

#[test]
fn gpu_oom_mirrors_capacity() {
    let gpu = GpuModel::a100();
    assert!(gpu.fits(datasets::catalog::sift100m().raw_bytes()));
    assert!(!gpu.fits(datasets::catalog::sift1b().raw_bytes()));
    assert!(!gpu.fits(datasets::catalog::t2i1b().raw_bytes()));
}
