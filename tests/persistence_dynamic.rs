//! Persistence + dynamic-update integration: a saved index reloads into an
//! identical engine; inserts/removals flow through search correctly.

use ann_core::ivf::{IvfPqIndex, IvfPqParams};
use drim_ann::config::{EngineConfig, IndexConfig};
use drim_ann::engine::DrimEngine;
use upmem_sim::PimArch;

fn workload() -> (ann_core::VecSet<f32>, ann_core::VecSet<f32>) {
    let spec = datasets::SynthSpec::small("persist", 16, 5_000, 51);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        16,
        datasets::queries::QuerySkew::InDistribution,
        3,
    );
    (data, queries)
}

fn index_cfg() -> IndexConfig {
    IndexConfig {
        k: 10,
        nprobe: 12,
        nlist: 64,
        m: 8,
        cb: 32,
    }
}

#[test]
fn engine_from_reloaded_index_matches_original() {
    let (data, queries) = workload();
    let params = IvfPqParams::new(64).m(8).cb(32);
    let idx = IvfPqIndex::build(&data, &params);

    let mut buf = Vec::new();
    ann_core::persist::save(&idx, &mut buf).unwrap();
    let reloaded = ann_core::persist::load(&buf[..]).unwrap();

    let mut e1 = DrimEngine::from_index(
        idx,
        &data,
        EngineConfig::drim(index_cfg()),
        PimArch::upmem_sc25(),
        8,
        None,
    )
    .unwrap();
    let mut e2 = DrimEngine::from_index(
        reloaded,
        &data,
        EngineConfig::drim(index_cfg()),
        PimArch::upmem_sc25(),
        8,
        None,
    )
    .unwrap();
    let (r1, _) = e1.search_batch(&queries);
    let (r2, _) = e2.search_batch(&queries);
    let ids = |rs: &[Vec<ann_core::Neighbor>]| -> Vec<Vec<u64>> {
        rs.iter()
            .map(|l| l.iter().map(|n| n.id).collect())
            .collect()
    };
    assert_eq!(ids(&r1), ids(&r2));
}

#[test]
fn file_roundtrip_via_tempfile() {
    let (data, _) = workload();
    let idx = IvfPqIndex::build(&data, &IvfPqParams::new(32).m(4).cb(16));
    let path = std::env::temp_dir().join("drim_ann_persist_test.idx");
    ann_core::persist::save(&idx, std::fs::File::create(&path).unwrap()).unwrap();
    let back = ann_core::persist::load(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(back.len(), idx.len());
    std::fs::remove_file(&path).ok();
}

#[test]
fn dynamic_stream_keeps_recall() {
    // start with half the corpus, stream in the rest, verify search quality
    // over the grown index
    let (data, queries) = workload();
    let half = data.len() / 2;
    let initial = data.select(&(0..half).collect::<Vec<_>>());
    let mut idx = IvfPqIndex::build(&initial, &IvfPqParams::new(64).m(8).cb(32));
    for i in half..data.len() {
        idx.insert(i as u32, data.get(i));
    }
    assert_eq!(idx.len(), data.len());

    let truth = ann_core::flat::ground_truth(&queries, &data, 10);
    let results: Vec<_> = (0..queries.len())
        .map(|qi| idx.search(queries.get(qi), 12, 10))
        .collect();
    let recall = ann_core::recall::mean_recall(&results, &truth, 10);
    assert!(recall > 0.6, "streamed-in index recall {recall}");
}

#[test]
fn churn_conserves_index_invariants() {
    let (data, _) = workload();
    let mut idx = IvfPqIndex::build(&data, &IvfPqParams::new(32).m(4).cb(16));
    // remove 100, re-insert them, repeatedly
    for round in 0..3 {
        for id in 0..100u32 {
            assert!(idx.remove(id), "round {round}, id {id}");
        }
        assert_eq!(idx.len(), data.len() - 100);
        for id in 0..100u32 {
            idx.insert(id, data.get(id as usize));
        }
        assert_eq!(idx.len(), data.len());
        for l in &idx.lists {
            assert_eq!(l.codes.len(), l.ids.len() * idx.params.m);
        }
    }
    // every id present exactly once
    let mut seen = vec![0u8; data.len()];
    for l in &idx.lists {
        for &id in &l.ids {
            seen[id as usize] += 1;
        }
    }
    assert!(seen.iter().all(|&c| c == 1));
}
