//! Functional kernels and closed-form (trace-mode) charge functions must
//! account identical costs — this is what makes trace-mode timing
//! trustworthy at scales the functional engine cannot reach.

use drim_ann::config::DataBits;
use drim_ann::kernels::{dc, lc, rc, ts, KernelCtx};
use drim_ann::sqt::Sqt;
use drim_ann::wram::{plan, WramCandidate, WramPlacement};
use upmem_sim::meter::PhaseMeter;
use upmem_sim::tasklet::LockPolicy;
use upmem_sim::IsaCosts;

fn ctx<'a>(placement: &'a WramPlacement, costs: &'a IsaCosts) -> KernelCtx<'a> {
    KernelCtx {
        costs,
        dma_burst: 8,
        bits: DataBits::B8,
        placement,
    }
}

fn wram_everything() -> WramPlacement {
    plan(
        &["sqt", "lut", "codebook", "residual", "topk", "codes"]
            .iter()
            .map(|n| WramCandidate {
                name: n,
                bytes: 1,
                accesses: 1.0,
            })
            .collect::<Vec<_>>(),
        1 << 20,
    )
}

#[test]
fn rc_charge_matches_run() {
    for placement in [WramPlacement::none(), wram_everything()] {
        let costs = IsaCosts::upmem();
        let c = ctx(&placement, &costs);
        let rq = ann_core::quantize::ScalarQuantizer {
            lo: -128.0,
            scale: 1.0,
            levels: 256,
        };
        let mut functional = PhaseMeter::default();
        let mut out = Vec::new();
        let q: Vec<f32> = (0..96).map(|i| i as f32).collect();
        let cent = vec![1.5f32; 96];
        rc::run(&c, &mut functional, &q, &cent, &rq, &mut out);

        let mut bulk = PhaseMeter::default();
        rc::charge(&c, &mut bulk, 96);
        assert_eq!(functional, bulk, "placement {placement:?}");
    }
}

#[test]
fn lc_charge_matches_run_with_sqt() {
    for placement in [WramPlacement::none(), wram_everything()] {
        let costs = IsaCosts::upmem();
        let c = ctx(&placement, &costs);
        let (m, cb, dsub) = (8usize, 16usize, 4usize);
        let residual: Vec<u8> = (0..m * dsub).map(|i| (i * 7 % 256) as u8).collect();
        let codebooks: Vec<u8> = (0..m * cb * dsub).map(|i| (i * 13 % 256) as u8).collect();

        let mut functional = PhaseMeter::default();
        let mut sqt = Sqt::for_u8();
        let mut lut = Vec::new();
        lc::run(
            &c,
            &mut functional,
            &residual,
            &codebooks,
            m,
            cb,
            dsub,
            Some(&mut sqt),
            &mut lut,
        );

        let mut bulk = PhaseMeter::default();
        lc::charge(
            &c,
            &mut bulk,
            m,
            cb,
            dsub,
            lc::SquareCost::SqtLookup { wram_hit_rate: 1.0 },
        );
        assert_eq!(functional, bulk, "placement {placement:?}");
    }
}

#[test]
fn lc_charge_matches_run_with_multiply() {
    let placement = WramPlacement::none();
    let costs = IsaCosts::upmem();
    let c = ctx(&placement, &costs);
    let (m, cb, dsub) = (4usize, 8usize, 6usize);
    let residual = vec![100u8; m * dsub];
    let codebooks = vec![50u8; m * cb * dsub];

    let mut functional = PhaseMeter::default();
    let mut lut = Vec::new();
    lc::run(
        &c,
        &mut functional,
        &residual,
        &codebooks,
        m,
        cb,
        dsub,
        None,
        &mut lut,
    );

    let mut bulk = PhaseMeter::default();
    lc::charge(&c, &mut bulk, m, cb, dsub, lc::SquareCost::Multiply);
    assert_eq!(functional, bulk);
}

#[test]
fn dc_charge_matches_run() {
    for placement in [WramPlacement::none(), wram_everything()] {
        let costs = IsaCosts::upmem();
        let c = ctx(&placement, &costs);
        let (m, cb, n) = (8usize, 16usize, 137usize);
        let codes: Vec<u16> = (0..n * m).map(|i| (i % cb) as u16).collect();
        let lut: Vec<u32> = (0..m * cb).map(|i| i as u32).collect();

        let mut functional = PhaseMeter::default();
        let mut out = Vec::new();
        dc::run(&c, &mut functional, &codes, m, cb, &lut, u64::MAX, &mut out);

        let mut bulk = PhaseMeter::default();
        dc::charge(&c, &mut bulk, n as u64, m, cb);
        assert_eq!(functional, bulk, "placement {placement:?}");
    }
}

#[test]
fn ts_charge_matches_run_lock_always_descending() {
    // strictly decreasing distances: every candidate locks AND retains,
    // making the bulk parameters exact
    let placement = WramPlacement::none();
    let costs = IsaCosts::upmem();
    let c = ctx(&placement, &costs);
    let n = 300usize;
    let k = 10usize;
    let cands: Vec<(u32, u64)> = (0..n).map(|i| (i as u32, (n - i) as u64)).collect();
    let ids: Vec<u32> = (0..n as u32).collect();

    let mut functional = PhaseMeter::default();
    let mut heap = ann_core::topk::BoundedMaxHeap::new(k);
    ts::run(
        &c,
        &mut functional,
        &cands,
        &ids,
        &mut heap,
        k,
        LockPolicy::LockAlways,
    );

    let mut bulk = PhaseMeter::default();
    ts::charge(
        &c,
        &mut bulk,
        n as u64,
        k,
        LockPolicy::LockAlways,
        n as u64,
        n as u64, // descending: every push retained
    );
    assert_eq!(functional, bulk);
}

#[test]
fn ts_charge_matches_run_forwarding_with_observed_stats() {
    let placement = WramPlacement::none();
    let costs = IsaCosts::upmem();
    let c = ctx(&placement, &costs);
    let n = 400usize;
    let k = 7usize;
    // pseudo-random distances
    let cands: Vec<(u32, u64)> = (0..n as u32)
        .map(|i| (i, ((i as u64).wrapping_mul(2654435761) % 10_000) + 1))
        .collect();
    let ids: Vec<u32> = (0..n as u32).collect();

    let mut functional = PhaseMeter::default();
    let mut heap = ann_core::topk::BoundedMaxHeap::new(k);
    let stats = ts::run(
        &c,
        &mut functional,
        &cands,
        &ids,
        &mut heap,
        k,
        LockPolicy::Forwarding,
    );

    // count retained by replaying pushes
    let mut replay = ann_core::topk::BoundedMaxHeap::new(k);
    let mut retained = 0u64;
    let mut fwd = replay.bound();
    for (i, &(slot, d)) in cands.iter().enumerate() {
        if (d as f32) < fwd && replay.push(ann_core::topk::Neighbor::new(slot as u64, d as f32)) {
            retained += 1;
        } else if (d as f32) < fwd {
            // locked but not retained: nothing written
        }
        if i % 32 == 31 {
            fwd = replay.bound();
        }
    }

    let mut bulk = PhaseMeter::default();
    ts::charge(
        &c,
        &mut bulk,
        n as u64,
        k,
        LockPolicy::Forwarding,
        stats.locked_updates,
        retained,
    );
    assert_eq!(functional, bulk);
}

#[test]
fn simulator_costs_invariant_to_host_thread_count() {
    // Costs are booked per work item (per DPU, per task) and folded back
    // into the system in DPU order, so the *simulated* wall clock, energy
    // and lock statistics must not depend on how many host threads execute
    // the per-DPU loop. Bit-compare the whole report via its Debug
    // rendering (f64 Debug round-trips, so any bit drift shows).
    use drim_ann::config::{EngineConfig, IndexConfig};
    use drim_ann::engine::DrimEngine;

    let spec = datasets::SynthSpec::small("charge-threads", 16, 2000, 31);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        24,
        datasets::queries::QuerySkew::InDistribution,
        6,
    );
    let cfg = EngineConfig::drim(IndexConfig {
        k: 10,
        nprobe: 10,
        nlist: 48,
        m: 8,
        cb: 32,
    });
    let mut engine = rayon::with_num_threads(1, || {
        DrimEngine::build(&data, cfg, upmem_sim::PimArch::upmem_sc25(), 8, None).unwrap()
    });
    let (_, baseline) = rayon::with_num_threads(1, || engine.search_batch(&queries));
    let baseline = format!("{baseline:?}");
    for threads in [2usize, 4, 8] {
        let (_, report) = rayon::with_num_threads(threads, || engine.search_batch(&queries));
        assert_eq!(
            format!("{report:?}"),
            baseline,
            "simulated cost report drifted at {threads} host threads"
        );
    }
}

#[test]
fn energy_breakdown_invariant_to_host_thread_count() {
    // The phase-resolved energy breakdown is a closed-form function of the
    // merged meters and batch timing, both of which are thread-invariant,
    // so every component (and the per-phase split) must be bit-identical
    // at any host thread count — in the functional engine AND in trace
    // mode. This extends the charge-parity contract to the energy layer.
    use drim_ann::config::{EngineConfig, IndexConfig};
    use drim_ann::engine::DrimEngine;
    use drim_ann::trace::{TraceRunner, TraceSpec};

    // functional engine
    let spec = datasets::SynthSpec::small("energy-threads", 16, 2000, 77);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        24,
        datasets::queries::QuerySkew::InDistribution,
        9,
    );
    let cfg = EngineConfig::drim(IndexConfig {
        k: 10,
        nprobe: 10,
        nlist: 48,
        m: 8,
        cb: 32,
    });
    let mut engine = rayon::with_num_threads(1, || {
        DrimEngine::build(
            &data,
            cfg.clone(),
            upmem_sim::PimArch::upmem_sc25(),
            8,
            None,
        )
        .unwrap()
    });
    let (_, base) = rayon::with_num_threads(1, || engine.search_batch(&queries));
    let base_energy = format!("{:?}", base.energy);
    assert_eq!(base.energy_j.to_bits(), base.energy.total_j().to_bits());
    for threads in [2usize, 4, 8] {
        let (_, rep) = rayon::with_num_threads(threads, || engine.search_batch(&queries));
        assert_eq!(
            format!("{:?}", rep.energy),
            base_energy,
            "engine energy breakdown drifted at {threads} host threads"
        );
    }

    // trace mode
    let tspec = TraceSpec {
        name: "energy-threads-trace".into(),
        n_points: 500_000,
        dim: 32,
        batch: 64,
        cluster_size_zipf: 0.35,
        heat_zipf: 1.0,
        seed: 11,
    };
    let tcfg = EngineConfig::drim(IndexConfig {
        k: 10,
        nprobe: 8,
        nlist: 256,
        m: 8,
        cb: 64,
    });
    let mut runner = TraceRunner::build(tspec, tcfg, upmem_sim::PimArch::upmem_sc25(), 32);
    let tbase = format!(
        "{:?}",
        rayon::with_num_threads(1, || runner.run_batch(5)).energy
    );
    for threads in [2usize, 4, 8] {
        let rep = rayon::with_num_threads(threads, || runner.run_batch(5));
        assert_eq!(
            format!("{:?}", rep.energy),
            tbase,
            "trace energy breakdown drifted at {threads} host threads"
        );
    }
}

#[test]
fn expected_updates_matches_random_stream_order_of_magnitude() {
    // harmonic estimate vs an actual random stream
    let n = 10_000u64;
    let k = 10usize;
    let mut heap = ann_core::topk::BoundedMaxHeap::new(k);
    let mut updates = 0u64;
    for i in 0..n {
        let d = ((i.wrapping_mul(6364136223846793005) >> 33) % 1_000_000) as f32;
        if heap.push(ann_core::topk::Neighbor::new(i, d)) {
            updates += 1;
        }
    }
    let est = ts::expected_updates(n, k);
    assert!(
        (est as f64) > updates as f64 * 0.3 && (est as f64) < updates as f64 * 3.0,
        "estimate {est} vs actual {updates}"
    );
}
