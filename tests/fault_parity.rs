//! Determinism contract of the fault-injection + recovery layer.
//!
//! Three bit-identity guarantees (see `docs/FAULT_MODEL.md`):
//!
//! 1. **Thread parity under faults** — a fixed fault seed produces
//!    bit-identical results *and* bit-identical `BatchReport`s at any host
//!    thread count: every fault draw is a stateless hash, never a shared
//!    RNG stream.
//! 2. **Disabled-layer parity** — no injector, an inert injector
//!    (`FaultConfig::none()`), and a cleared injector are all bit-identical
//!    to each other: the fault layer costs nothing when off.
//! 3. **Purity** — `search_batch` is a pure function of
//!    `(engine, queries, fault_batch)`: repeated calls replay the same
//!    faults and the same recovery, bit-for-bit; advancing `fault_batch`
//!    redraws the transient faults.

use ann_core::topk::Neighbor;
use ann_core::vector::VecSet;
use drim_ann::config::{EngineConfig, IndexConfig};
use drim_ann::engine::DrimEngine;
use drim_ann::trace::{TraceRunner, TraceSpec};
use rayon::with_num_threads;
use upmem_sim::fault::{FaultConfig, SlowdownDist};
use upmem_sim::PimArch;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const FAULT_SEED: u64 = 0xFA17_5EED;

fn workload() -> (VecSet<f32>, VecSet<f32>) {
    let spec = datasets::SynthSpec::small("fault-parity", 16, 3000, 31);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        32,
        datasets::queries::QuerySkew::InDistribution,
        6,
    );
    (data, queries)
}

fn cfg() -> EngineConfig {
    let mut cfg = EngineConfig::drim(IndexConfig {
        k: 10,
        nprobe: 12,
        nlist: 64,
        m: 8,
        cb: 32,
    });
    cfg.batch = 32;
    cfg
}

fn engine(data: &VecSet<f32>) -> DrimEngine {
    let mut e = DrimEngine::build(data, cfg(), PimArch::upmem_sc25(), 8, None).unwrap();
    // the CI fault matrix arms every engine via DRIM_ANN_FAULT_SEED; these
    // tests control the injector themselves
    e.clear_faults();
    e
}

/// Bit-exact key for a result set: ids plus raw f32 distance bits.
type ResultBits = Vec<Vec<(u64, u32)>>;

fn result_bits(rs: &[Vec<Neighbor>]) -> ResultBits {
    rs.iter()
        .map(|l| l.iter().map(|n| (n.id, n.dist.to_bits())).collect())
        .collect()
}

#[test]
fn same_fault_seed_bit_identical_across_thread_counts() {
    let (data, queries) = workload();
    let mut reference: Option<(ResultBits, String)> = None;
    for threads in THREAD_COUNTS {
        let (bits, report, active) = with_num_threads(threads, || {
            let mut e = engine(&data);
            e.inject_faults(FaultConfig::uniform(FAULT_SEED, 0.15))
                .unwrap();
            e.set_fault_batch(3);
            let (r, rep) = e.search_batch(&queries);
            (result_bits(&r), format!("{rep:?}"), rep.fault.active())
        });
        match &reference {
            None => {
                // the reference run must actually exercise recovery
                assert!(
                    active,
                    "15% rates over 8 DPUs must fire something: {report}"
                );
                reference = Some((bits, report));
            }
            Some((ref_bits, ref_report)) => {
                assert_eq!(&bits, ref_bits, "results differ at {threads} threads");
                assert_eq!(&report, ref_report, "report differs at {threads} threads");
            }
        }
    }
}

#[test]
fn disabled_fault_layer_is_bit_identical_to_no_injector() {
    let (data, queries) = workload();
    // no injector at all
    let mut plain = engine(&data);
    let (r0, rep0) = plain.search_batch(&queries);
    // wired but inert injector
    let mut inert = engine(&data);
    inert.inject_faults(FaultConfig::none()).unwrap();
    assert!(!inert.fault_active());
    let (r1, rep1) = inert.search_batch(&queries);
    assert_eq!(result_bits(&r0), result_bits(&r1));
    assert_eq!(format!("{rep0:?}"), format!("{rep1:?}"));
    // armed then cleared
    let mut cleared = engine(&data);
    cleared
        .inject_faults(FaultConfig::uniform(FAULT_SEED, 0.2))
        .unwrap();
    let _ = cleared.search_batch(&queries);
    cleared.clear_faults();
    let (r2, rep2) = cleared.search_batch(&queries);
    assert_eq!(result_bits(&r0), result_bits(&r2));
    assert_eq!(format!("{rep0:?}"), format!("{rep2:?}"));
}

#[test]
fn search_batch_is_pure_in_engine_queries_and_fault_batch() {
    let (data, queries) = workload();
    let mut e = engine(&data);
    e.inject_faults(FaultConfig::uniform(FAULT_SEED, 0.15))
        .unwrap();
    // repeated calls at a fixed fault_batch replay the same faults
    let (r1, rep1) = e.search_batch(&queries);
    let (r2, rep2) = e.search_batch(&queries);
    assert_eq!(result_bits(&r1), result_bits(&r2));
    assert_eq!(format!("{rep1:?}"), format!("{rep2:?}"));
    // advancing fault_batch redraws the transient faults: across enough
    // batches the accounting must vary (the dead set stays fixed)
    let mut transient_signatures = std::collections::HashSet::new();
    let mut dead = std::collections::HashSet::new();
    for b in 0..12 {
        e.set_fault_batch(b);
        let (_, rep) = e.search_batch(&queries);
        transient_signatures.insert((
            rep.fault.stragglers,
            rep.fault.corruptions,
            rep.fault.hedged_tasks,
            rep.fault.retried_tasks,
        ));
        dead.insert(rep.fault.dead_dpus);
    }
    assert!(
        transient_signatures.len() > 1,
        "transient faults must vary across batches: {transient_signatures:?}"
    );
    assert_eq!(dead.len(), 1, "the fail-stop set is static across batches");
}

#[test]
fn recovery_results_match_zero_fault_results() {
    // with the host fallback on, every recovery path is lossless: the
    // faulted engine returns the exact zero-fault answer
    let (data, queries) = workload();
    let mut clean = engine(&data);
    let (r0, _) = clean.search_batch(&queries);
    for seed in [1u64, 99, 0xABCD] {
        let mut faulty = engine(&data);
        faulty
            .inject_faults(FaultConfig::uniform(seed, 0.25))
            .unwrap();
        let (r1, rep) = faulty.search_batch(&queries);
        assert_eq!(
            result_bits(&r0),
            result_bits(&r1),
            "seed {seed:#x} lost results ({:?})",
            rep.fault
        );
    }
}

#[test]
fn repeated_transients_quarantine_a_dpu() {
    let (data, queries) = workload();
    let mut cfg = cfg();
    cfg.recovery.quarantine_after = 1; // one strike and you're out
    cfg.recovery.hedge = false;
    let mut e = DrimEngine::build(&data, cfg, PimArch::upmem_sc25(), 8, None).unwrap();
    // corruption-only: every corrupt wave is one strike on that DPU
    let mut fc = FaultConfig::none();
    fc.seed = 0xC0DE;
    fc.corruption_rate = 0.6;
    e.inject_faults(fc).unwrap();
    let (_, rep) = e.search_batch(&queries);
    assert!(
        rep.fault.corruptions > 0,
        "60% corruption must fire: {:?}",
        rep.fault
    );
    assert!(
        rep.fault.quarantined_dpus > 0,
        "quarantine_after=1 must quarantine every corrupting DPU: {:?}",
        rep.fault
    );
    // quarantine is per-batch state: the next batch starts clean
    e.set_fault_batch(1_000_000);
    let (_, rep2) = e.search_batch(&queries);
    assert!(rep2.fault.quarantined_dpus <= rep.fault.quarantined_dpus + 8);
}

#[test]
fn hedging_caps_straggler_tail_latency() {
    let (data, queries) = workload();
    // straggler-heavy, brutal slowdowns, no fail-stop/corruption noise
    let mut fc = FaultConfig::none();
    fc.seed = 0x57A6;
    fc.straggler_rate = 0.3;
    fc.slowdown = SlowdownDist::Pareto {
        scale: 4.0,
        alpha: 1.1,
        cap: 64.0,
    };
    let mut hedged_cfg = cfg();
    hedged_cfg.recovery.hedge = true;
    let mut retry_cfg = cfg();
    retry_cfg.recovery.hedge = false;

    let mut hedged_engine =
        DrimEngine::build(&data, hedged_cfg, PimArch::upmem_sc25(), 8, None).unwrap();
    hedged_engine.inject_faults(fc).unwrap();
    let mut retry_engine =
        DrimEngine::build(&data, retry_cfg, PimArch::upmem_sc25(), 8, None).unwrap();
    retry_engine.inject_faults(fc).unwrap();

    let mut hedged_worst = 0.0f64;
    let mut retry_worst = 0.0f64;
    let mut total_hedged = 0usize;
    for b in 0..24 {
        hedged_engine.set_fault_batch(b);
        retry_engine.set_fault_batch(b);
        let (rh, reph) = hedged_engine.search_batch(&queries);
        let (rr, repr) = retry_engine.search_batch(&queries);
        // hedging changes *when* results arrive, never *what* they are
        assert_eq!(result_bits(&rh), result_bits(&rr), "batch {b}");
        hedged_worst = hedged_worst.max(reph.timing.total_s());
        retry_worst = retry_worst.max(repr.timing.total_s());
        total_hedged += reph.fault.hedged_tasks;
    }
    assert!(total_hedged > 0, "Pareto tail at 30% must trigger hedging");
    assert!(
        hedged_worst < retry_worst,
        "hedging must beat waiting on the tail: hedged {hedged_worst} vs retry {retry_worst}"
    );
}

#[test]
fn rank_kill_mid_run_is_lossless_and_thread_invariant() {
    let (data, queries) = workload();
    let mut clean = engine(&data);
    let (r0, _) = clean.search_batch(&queries);

    // 8 DPUs in 4 ranks of 2; a 60% rank draw at this seed kills some but
    // not all ranks, starting mid-run at batch 2.
    let rank_cfg = FaultConfig::rank_kill(0xD1, 0.6, 2, 2);
    let mut reference: Option<(ResultBits, String)> = None;
    for threads in THREAD_COUNTS {
        let (bits, report, fault) = with_num_threads(threads, || {
            let mut e = engine(&data);
            e.inject_faults(rank_cfg).unwrap();
            e.set_fault_batch(5);
            let (r, rep) = e.search_batch(&queries);
            (result_bits(&r), format!("{rep:?}"), rep.fault)
        });
        assert!(fault.dead_ranks > 0, "60% must kill a rank: {fault:?}");
        assert!(fault.dead_ranks < 4, "60% must spare a rank: {fault:?}");
        assert_eq!(fault.dead_dpus, fault.dead_ranks * 2);
        // the host fallback makes rank loss lossless: zero failed queries,
        // results bit-identical to the no-fault run
        assert_eq!(fault.dropped_tasks, 0, "{fault:?}");
        assert_eq!(
            bits,
            result_bits(&r0),
            "rank kill lost results at {threads} threads"
        );
        match &reference {
            None => reference = Some((bits, report)),
            Some((ref_bits, ref_report)) => {
                assert_eq!(&bits, ref_bits, "results differ at {threads} threads");
                assert_eq!(&report, ref_report, "report differs at {threads} threads");
            }
        }
    }

    // before the kill batch the same injector is inert rank-wise
    let mut early = engine(&data);
    early.inject_faults(rank_cfg).unwrap();
    early.set_fault_batch(1);
    let (r1, rep1) = early.search_batch(&queries);
    assert_eq!(rep1.fault.dead_ranks, 0, "kill gated on batch 2");
    assert_eq!(result_bits(&r1), result_bits(&r0));
}

#[test]
fn trace_runner_fault_reports_are_thread_invariant() {
    let spec = TraceSpec {
        name: "fault-parity-trace".into(),
        n_points: 400_000,
        dim: 32,
        batch: 64,
        cluster_size_zipf: 0.35,
        heat_zipf: 1.1,
        seed: 77,
    };
    let mut cfg = EngineConfig::drim(IndexConfig {
        k: 10,
        nprobe: 8,
        nlist: 128,
        m: 8,
        cb: 64,
    });
    cfg.batch = 64;
    let mut reference: Option<String> = None;
    for threads in THREAD_COUNTS {
        let report = with_num_threads(threads, || {
            let mut runner =
                TraceRunner::build(spec.clone(), cfg.clone(), PimArch::upmem_sc25(), 32);
            runner
                .inject_faults(FaultConfig::uniform(FAULT_SEED, 0.1))
                .unwrap();
            format!("{:?}", runner.run_batch(9))
        });
        match &reference {
            None => reference = Some(report),
            Some(r) => assert_eq!(&report, r, "trace report differs at {threads} threads"),
        }
    }
}
