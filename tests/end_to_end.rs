//! End-to-end integration: corpus -> index -> layout -> simulated PIM
//! search -> recall, across engine configurations.

use drim_ann::config::{EngineConfig, IndexConfig};
use drim_ann::engine::DrimEngine;
use upmem_sim::PimArch;

fn workload(
    n: usize,
    dim: usize,
    nq: usize,
    seed: u64,
) -> (ann_core::VecSet<f32>, ann_core::VecSet<f32>, Vec<Vec<u64>>) {
    let spec = datasets::SynthSpec::small("e2e", dim, n, seed);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        nq,
        datasets::queries::QuerySkew::InDistribution,
        seed ^ 0xFF,
    );
    let truth = ann_core::flat::ground_truth(&queries, &data, 10);
    (data, queries, truth)
}

fn index() -> IndexConfig {
    IndexConfig {
        k: 10,
        nprobe: 24,
        nlist: 96,
        m: 8,
        cb: 64,
    }
}

#[test]
fn drim_engine_meets_the_paper_accuracy_constraint() {
    // the paper's evaluation constraint: recall@10 >= 0.8, met with a
    // PQ strong enough for this synthetic geometry (m=16 over 16 dims)
    let (data, queries, truth) = workload(12_000, 16, 48, 1);
    let strong = IndexConfig {
        k: 10,
        nprobe: 24,
        nlist: 96,
        m: 16,
        cb: 64,
    };
    let mut engine = DrimEngine::build(
        &data,
        EngineConfig::drim(strong),
        PimArch::upmem_sc25(),
        32,
        Some(&queries),
    )
    .unwrap();
    let (results, report) = engine.search_batch(&queries);
    let recall = ann_core::recall::mean_recall(&results, &truth, 10);
    assert!(recall >= 0.8, "recall@10 = {recall}");
    assert!(report.qps > 0.0);
}

#[test]
fn layout_and_scheduling_do_not_change_results() {
    // The load-balance machinery moves work around; the answer must not
    // move with it. Same index seed => same codes => identical neighbor
    // sets between the naive and fully-optimized engines.
    let (data, queries, _) = workload(6_000, 16, 24, 3);
    let ivf = ann_core::ivf::IvfPqIndex::build(
        &data,
        &ann_core::ivf::IvfPqParams::new(index().nlist)
            .m(index().m)
            .cb(index().cb),
    );
    let mut naive = DrimEngine::from_index(
        ivf.clone(),
        &data,
        EngineConfig::naive(index()),
        PimArch::upmem_sc25(),
        16,
        None,
    )
    .unwrap();
    let mut drim = DrimEngine::from_index(
        ivf,
        &data,
        EngineConfig::drim(index()),
        PimArch::upmem_sc25(),
        16,
        Some(&queries),
    )
    .unwrap();
    let (r_naive, rep_naive) = naive.search_batch(&queries);
    let (r_drim, rep_drim) = drim.search_batch(&queries);
    let ids = |rs: &[Vec<ann_core::Neighbor>]| -> Vec<Vec<u64>> {
        rs.iter()
            .map(|l| {
                let mut v: Vec<u64> = l.iter().map(|n| n.id).collect();
                v.sort_unstable();
                v
            })
            .collect()
    };
    assert_eq!(ids(&r_naive), ids(&r_drim));
    // and the optimized engine must not be slower
    assert!(
        rep_drim.timing.pim_s() <= rep_naive.timing.pim_s() * 1.05,
        "drim {} naive {}",
        rep_drim.timing.pim_s(),
        rep_naive.timing.pim_s()
    );
}

#[test]
fn results_are_deterministic_across_runs() {
    let (data, queries, _) = workload(4_000, 16, 16, 7);
    let run = || {
        let mut e = DrimEngine::build(
            &data,
            EngineConfig::drim(index()),
            PimArch::upmem_sc25(),
            8,
            None,
        )
        .unwrap();
        let (r, rep) = e.search_batch(&queries);
        (
            r.iter()
                .map(|l| l.iter().map(|n| n.id).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
            rep.timing.pim_s(),
        )
    };
    let (r1, t1) = run();
    let (r2, t2) = run();
    assert_eq!(r1, r2);
    assert_eq!(t1, t2);
}

#[test]
fn more_dpus_reduce_batch_latency() {
    let (data, queries, _) = workload(10_000, 16, 32, 11);
    let time_with = |ndpus: usize| {
        let mut e = DrimEngine::build(
            &data,
            EngineConfig::drim(index()),
            PimArch::upmem_sc25(),
            ndpus,
            Some(&queries),
        )
        .unwrap();
        let (_, rep) = e.search_batch(&queries);
        rep.timing.pim_s()
    };
    let t8 = time_with(8);
    let t64 = time_with(64);
    assert!(
        t64 < t8 / 2.0,
        "64 DPUs ({t64}s) should be well under half of 8 DPUs ({t8}s)"
    );
}

#[test]
fn opq_and_dpq_variants_run_through_the_engine() {
    let (data, queries, truth) = workload(4_000, 16, 16, 13);
    for variant in [ann_core::ivf::PqVariant::Opq, ann_core::ivf::PqVariant::Dpq] {
        let ivf = ann_core::ivf::IvfPqIndex::build(
            &data,
            &ann_core::ivf::IvfPqParams::new(64)
                .m(8)
                .cb(32)
                .variant(variant),
        );
        let mut engine = DrimEngine::from_index(
            ivf,
            &data,
            EngineConfig::drim(IndexConfig {
                k: 10,
                nprobe: 16,
                nlist: 64,
                m: 8,
                cb: 32,
            }),
            PimArch::upmem_sc25(),
            16,
            None,
        )
        .unwrap();
        let (results, _) = engine.search_batch(&queries);
        let recall = ann_core::recall::mean_recall(&results, &truth, 10);
        assert!(recall > 0.5, "{variant:?} recall {recall}");
    }
}
