//! Load-balance integration: the optimization stack must recover the
//! imbalance that skewed traffic induces (paper Figs. 13-14).

use drim_ann::config::{AllocPolicy, EngineConfig, IndexConfig, SchedPolicy};
use drim_ann::trace::{TraceRunner, TraceSpec};
use upmem_sim::PimArch;

fn hot_spec() -> TraceSpec {
    TraceSpec {
        name: "hot".into(),
        n_points: 2_000_000,
        dim: 64,
        batch: 256,
        cluster_size_zipf: 0.5,
        heat_zipf: 1.4,
        seed: 7,
    }
}

fn index() -> IndexConfig {
    IndexConfig {
        k: 10,
        nprobe: 16,
        nlist: 512,
        m: 8,
        cb: 64,
    }
}

fn pim_time(cfg: EngineConfig) -> (f64, f64) {
    let mut runner = TraceRunner::build(hot_spec(), cfg, PimArch::upmem_sc25(), 128);
    let rep = runner.run_batch(1);
    (rep.timing.pim_s(), rep.imbalance)
}

#[test]
fn each_optimization_layer_helps() {
    let naive = EngineConfig::naive(index());
    let mut alloc = EngineConfig::naive(index());
    alloc.allocation = AllocPolicy::HeatBalanced;
    let mut alloc_part = alloc.clone();
    alloc_part.partition = true;
    let mut alloc_part_dup = alloc_part.clone();
    alloc_part_dup.duplication = true;
    alloc_part_dup.scheduling = SchedPolicy::Greedy;

    let (t_naive, imb_naive) = pim_time(naive);
    let (t_alloc, _) = pim_time(alloc);
    let (t_part, _) = pim_time(alloc_part);
    let (t_full, imb_full) = pim_time(alloc_part_dup);

    assert!(t_alloc < t_naive, "allocation: {t_alloc} !< {t_naive}");
    assert!(
        t_part <= t_alloc * 1.02,
        "partition: {t_part} !<= {t_alloc}"
    );
    assert!(t_full <= t_part * 1.02, "dup+sched: {t_full} !<= {t_part}");
    // overall speedup should be substantial under this skew
    assert!(
        t_naive / t_full > 2.0,
        "overall load-balance speedup {} too small",
        t_naive / t_full
    );
    assert!(imb_full < imb_naive, "imbalance {imb_full} !< {imb_naive}");
}

#[test]
fn duplication_budget_saturates() {
    // Fig 14b: speedup grows with the duplicate budget then saturates
    let base = {
        let mut c = EngineConfig::drim(index());
        c.duplication = false;
        c
    };
    let (t_nodup, _) = pim_time(base.clone());
    let speedup_at = |kb: u64| {
        let mut c = base.clone();
        c.duplication = true;
        c.dup_budget_bytes = Some(kb << 10);
        let (t, _) = pim_time(c);
        t_nodup / t
    };
    let s_small = speedup_at(4);
    let s_big = speedup_at(4096);
    let s_huge = speedup_at(16384);
    assert!(
        s_big >= s_small * 0.98,
        "more budget should help: {s_small} -> {s_big}"
    );
    // saturation: quadrupling the budget again changes little
    assert!(
        (s_huge / s_big) < 1.3,
        "saturation expected: {s_big} -> {s_huge}"
    );
}

#[test]
fn th3_postponement_bounds_the_tail() {
    // duplication off: with a single replica per slice the scheduler cannot
    // spread hot clusters, so th3 is the only tail control — the regime
    // where postponement visibly engages
    let mut eager = EngineConfig::drim(index());
    eager.duplication = false;
    eager.th3 = f64::INFINITY; // never postpone
    let mut bounded = EngineConfig::drim(index());
    bounded.duplication = false;
    bounded.th3 = 0.10;

    let mut runner_e = TraceRunner::build(hot_spec(), eager, PimArch::upmem_sc25(), 128);
    let mut runner_b = TraceRunner::build(hot_spec(), bounded, PimArch::upmem_sc25(), 128);
    let rep_e = runner_e.run_batch(1);
    let rep_b = runner_b.run_batch(1);
    // the bounded schedule postpones something under this skew...
    assert!(rep_b.postponed > 0, "expected postponed tasks");
    // ...and must not be slower overall (postponed work still executes)
    assert!(rep_b.timing.pim_s() <= rep_e.timing.pim_s() * 1.10);
}

#[test]
fn static_scheduling_wastes_replicas() {
    let mut greedy = EngineConfig::drim(index());
    greedy.scheduling = SchedPolicy::Greedy;
    let mut fixed = EngineConfig::drim(index());
    fixed.scheduling = SchedPolicy::Static;
    let (t_greedy, _) = pim_time(greedy);
    let (t_static, _) = pim_time(fixed);
    assert!(
        t_greedy < t_static,
        "greedy {t_greedy} should beat static {t_static}"
    );
}
