//! Simulator-vs-analytic-model agreement (the property paper Fig. 11b
//! validates: the real engine achieves 71.8–99.9 % of the model's
//! prediction).

use drim_ann::config::{EngineConfig, IndexConfig};
use drim_ann::perf_model::{predict, BitWidths, WorkloadShape};
use drim_ann::trace::{TraceRunner, TraceSpec};
use upmem_sim::platform::procs;
use upmem_sim::PimArch;

/// Uniform cluster sizes and heat: the regime where the perfectly-balanced
/// analytic model and the simulator should coincide. (Skewed regimes
/// intentionally diverge — that gap *is* the load-imbalance signal the
/// paper's optimizations close; see `tests/load_balance.rs`.)
fn spec(n: u64, dim: usize, batch: usize) -> TraceSpec {
    TraceSpec {
        name: "model-vs-sim".into(),
        n_points: n,
        dim,
        batch,
        cluster_size_zipf: 0.0,
        heat_zipf: 0.0,
        seed: 99,
    }
}

#[test]
fn trace_qps_tracks_model_prediction() {
    // the model must describe the same machine the trace instantiates
    let mut arch = PimArch::upmem_sc25();
    arch.num_dpus = 512;
    let host = procs::xeon_silver_4216();
    for nlist in [1usize << 10, 1 << 12] {
        let index = IndexConfig {
            k: 10,
            nprobe: 32,
            nlist,
            m: 16,
            cb: 256,
        };
        let shape = WorkloadShape::new(10_000_000, 512, 128, &index, BitWidths::u8_regime());
        let ideal = predict(&shape, &arch, &host, true).qps;

        let mut runner = TraceRunner::build(
            spec(10_000_000, 128, 512),
            EngineConfig::drim(index),
            arch.clone(),
            512,
        );
        let actual = runner.mean_qps(2);
        let ratio = actual / ideal;
        // the model is an *ideal* (perfect balance, no overheads): the
        // simulator must come in below it but within the paper's band,
        // widened for our reduced-scale run
        assert!(
            (0.25..=1.6).contains(&ratio),
            "nlist {nlist}: actual {actual:.0} / ideal {ideal:.0} = {ratio:.2}"
        );
    }
}

#[test]
fn model_and_sim_agree_on_sweep_direction() {
    // if the model says nprobe=128 is slower than nprobe=32, the simulator
    // must agree (and vice versa) — directional consistency is what makes
    // the model a usable DSE surrogate
    let arch = PimArch::upmem_sc25();
    let host = procs::xeon_silver_4216();
    let qps_pair = |nprobe: usize| {
        let index = IndexConfig {
            k: 10,
            nprobe,
            nlist: 1 << 10,
            m: 16,
            cb: 256,
        };
        let shape = WorkloadShape::new(5_000_000, 256, 96, &index, BitWidths::u8_regime());
        let model = predict(&shape, &arch, &host, true).qps;
        let mut runner = TraceRunner::build(
            spec(5_000_000, 96, 256),
            EngineConfig::drim(index),
            arch.clone(),
            256,
        );
        (model, runner.mean_qps(1))
    };
    let (m32, s32) = qps_pair(32);
    let (m128, s128) = qps_pair(128);
    assert!(m32 > m128, "model: fewer probes must be faster");
    assert!(s32 > s128, "sim: fewer probes must be faster");
    // and the *magnitude* of the slowdown should be comparable (within 2x)
    let model_ratio = m32 / m128;
    let sim_ratio = s32 / s128;
    assert!(
        (model_ratio / sim_ratio) < 2.0 && (sim_ratio / model_ratio) < 2.0,
        "model ratio {model_ratio:.2} vs sim ratio {sim_ratio:.2}"
    );
}

#[test]
fn model_energy_tracks_metered_energy() {
    // The analytic Prediction::energy_j uses the same EnergyCosts
    // coefficients as the simulator's metered breakdown, with closed-form
    // counts instead of charged counters. In the uniform regime the two
    // must agree within a small band, and both must order a probe sweep
    // the same way — that consistency is what makes the analytic estimate
    // a usable surrogate for the energy-aware DSE objectives.
    let mut arch = PimArch::upmem_sc25();
    arch.num_dpus = 512;
    let host = procs::xeon_silver_4216();
    let pair = |nprobe: usize| {
        let index = IndexConfig {
            k: 10,
            nprobe,
            nlist: 1 << 12,
            m: 16,
            cb: 256,
        };
        let shape = WorkloadShape::new(10_000_000, 512, 128, &index, BitWidths::u8_regime());
        let model = predict(&shape, &arch, &host, true);
        let mut runner = TraceRunner::build(
            spec(10_000_000, 128, 512),
            EngineConfig::drim(index),
            arch.clone(),
            512,
        );
        let rep = runner.run_batch(1);
        (model, rep)
    };
    let (m32, s32) = pair(32);
    let (m96, s96) = pair(96);
    for (m, s, label) in [(&m32, &s32, "nprobe=32"), (&m96, &s96, "nprobe=96")] {
        let ratio = s.energy_j / m.energy_j;
        // the model is an ideal (perfect balance); imbalance stretches the
        // simulated batch and with it the static-energy window, so the
        // simulator lands above the model but within a modest band
        assert!(
            (0.5..=3.0).contains(&ratio),
            "{label}: sim {:.1} J / model {:.1} J = {ratio:.2}",
            s.energy_j,
            m.energy_j
        );
        // and the metered dynamic phases are visible in both accountings
        assert!(s.energy.dynamic_j() > 0.0);
        assert!(m.energy_j < upmem_sim::EnergyModel::for_arch(&arch).energy_j(m.total_s));
    }
    // sweep direction: more probes cost more energy in model and sim alike
    assert!(
        m96.energy_j > m32.energy_j,
        "model energy must grow with nprobe"
    );
    assert!(
        s96.energy_j > s32.energy_j,
        "simulated energy must grow with nprobe"
    );
    // per-query efficiency degrades in the same direction too
    assert!(m96.queries_per_joule(512.0) < m32.queries_per_joule(512.0));
    assert!(s96.queries_per_joule() < s32.queries_per_joule());
}

#[test]
fn c2io_predicts_which_phase_dominates() {
    // the model's DC-vs-LC bottleneck shift with nlist (paper Fig. 9) must
    // appear in the simulator's phase breakdown
    let arch = PimArch::upmem_sc25();
    let report_for = |nlist: usize| {
        let index = IndexConfig {
            k: 10,
            nprobe: 32,
            nlist,
            m: 16,
            cb: 256,
        };
        let mut runner = TraceRunner::build(
            spec(10_000_000, 128, 256),
            EngineConfig::drim(index),
            arch.clone(),
            256,
        );
        runner.run_batch(1)
    };
    use drim_ann::Phase;
    let small = report_for(1 << 9); // C ~ 19.5k points: DC-heavy
    let large = report_for(1 << 14); // C ~ 610: LC-heavy
    assert!(
        small.fraction(Phase::Dc) > small.fraction(Phase::Lc),
        "small nlist: DC {} LC {}",
        small.fraction(Phase::Dc),
        small.fraction(Phase::Lc)
    );
    assert!(
        large.fraction(Phase::Lc) > large.fraction(Phase::Dc),
        "large nlist: LC {} DC {}",
        large.fraction(Phase::Lc),
        large.fraction(Phase::Dc)
    );
}
