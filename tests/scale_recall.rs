//! Larger-scale recall harness (ROADMAP item): a ~10^5-point synthetic
//! corpus through the dynamic-stream path, plus an fvecs round-trip of the
//! corpus through a real temp file.
//!
//! Ignored by default — roughly a minute of single-core work — so tier-1
//! `cargo test -q` stays fast. Run with:
//!
//! ```text
//! cargo test --release --test scale_recall -- --ignored
//! ```

use ann_core::ivf::{IvfPqIndex, IvfPqParams};
use drim_ann::config::{EngineConfig, IndexConfig};
use drim_ann::engine::DrimEngine;

const N: usize = 100_000;
const K: usize = 10;

#[test]
#[ignore = "10^5-point harness (~1 min); run with --ignored or the CI bench leg"]
fn dynamic_stream_keeps_recall_at_scale() {
    let spec = datasets::SynthSpec::small("scale-100k", 16, N, 77);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        32,
        datasets::queries::QuerySkew::InDistribution,
        9,
    );

    // fvecs round-trip through an actual file: the readers must hand back
    // the exact corpus at this scale
    let path = std::env::temp_dir().join("drim_ann_scale_recall.fvecs");
    {
        let f = std::fs::File::create(&path).unwrap();
        datasets::io::write_fvecs(std::io::BufWriter::new(f), &data).unwrap();
    }
    let reread = {
        let f = std::fs::File::open(&path).unwrap();
        datasets::io::read_fvecs(std::io::BufReader::new(f)).unwrap()
    };
    std::fs::remove_file(&path).ok();
    assert_eq!(reread.len(), N);
    assert_eq!(reread, data, "fvecs round-trip must be lossless");

    // dynamic-stream path: index the first half, stream in the second
    let half = data.len() / 2;
    let initial = data.select(&(0..half).collect::<Vec<_>>());
    let mut idx = IvfPqIndex::build(&initial, &IvfPqParams::new(128).m(16).cb(64));
    for i in half..data.len() {
        idx.insert(i as u32, data.get(i));
    }
    assert_eq!(idx.len(), data.len());

    let truth = ann_core::flat::ground_truth(&queries, &data, K);
    let results: Vec<_> = (0..queries.len())
        .map(|qi| idx.search(queries.get(qi), 24, K))
        .collect();
    let recall = ann_core::recall::mean_recall(&results, &truth, K);
    eprintln!("scale harness: recall@{K} = {recall} over {N} points");
    // the seed's small-scale dynamic-stream test reached 0.81; the 10^5
    // corpus must hold that line
    assert!(recall >= 0.81, "recall@{K} = {recall} at {N} points");
}

/// Churn variant of the dynamic-stream harness: a live engine under
/// sustained insert+delete turnover (1% of the corpus per round, five
/// rounds, maintenance after each) must keep recall@10 over the *current
/// logical corpus* within 0.05 of the pre-churn level.
#[test]
#[ignore = "30k-point churn harness (~1 min); run with --ignored or the CI bench leg"]
fn churn_stream_bounds_recall_degradation_at_scale() {
    const NC: usize = 30_000;
    const ROUNDS: usize = 5;
    let turnover = NC / 100; // 1% per round

    let spec = datasets::SynthSpec::small("scale-churn", 16, NC, 78);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        32,
        datasets::queries::QuerySkew::InDistribution,
        9,
    );
    let fresh = datasets::generate(&datasets::SynthSpec::small(
        "scale-churn-new",
        16,
        ROUNDS * turnover,
        79,
    ));

    let mut cfg = EngineConfig::drim(IndexConfig {
        k: K,
        nprobe: 24,
        nlist: 128,
        m: 16,
        cb: 64,
    });
    // Aggressive compaction so every round's tombstones are reclaimed —
    // the harness then doubles as a check that repeated maintenance under
    // churn stays results-sane.
    cfg.maintenance.compact_tombstone_frac = 1e-6;
    let mut engine = DrimEngine::build(&data, cfg, Default::default(), 16, None).unwrap();

    // Mirror of the logical corpus: (engine id, vector), kept in sync
    // with every mutation so ground truth is always exact over what the
    // engine is supposed to hold.
    let mut corpus: Vec<(u32, Vec<f32>)> =
        (0..NC).map(|i| (i as u32, data.get(i).to_vec())).collect();
    let recall_over_corpus = |engine: &mut DrimEngine, corpus: &[(u32, Vec<f32>)]| -> f64 {
        let mut set = ann_core::VecSet::with_capacity(16, corpus.len());
        for (_, v) in corpus {
            set.push(v);
        }
        let truth: Vec<Vec<u64>> = ann_core::flat::ground_truth(&queries, &set, K)
            .into_iter()
            .map(|t| {
                t.into_iter()
                    .map(|pos| corpus[pos as usize].0 as u64)
                    .collect()
            })
            .collect();
        let (results, _) = engine.search_batch(&queries);
        ann_core::recall::mean_recall(&results, &truth, K)
    };

    let recall0 = recall_over_corpus(&mut engine, &corpus);
    eprintln!("churn harness: pre-churn recall@{K} = {recall0} over {NC} points");

    let mut next_id = 1_000_000u32;
    let mut cursor = 0usize;
    for round in 0..ROUNDS {
        // Delete a deterministic spread of the current corpus…
        let step = corpus.len() / turnover;
        let victims: Vec<u32> = (0..turnover).map(|i| corpus[i * step].0).collect();
        for &id in &victims {
            assert!(engine.delete(id), "victim {id} must be live");
        }
        corpus.retain(|(id, _)| !victims.contains(id));
        // …and stream in the same number of fresh points.
        for _ in 0..turnover {
            let v = fresh.get(cursor).to_vec();
            cursor += 1;
            engine.insert(next_id, &v).unwrap();
            corpus.push((next_id, v));
            next_id += 1;
        }
        let rep = engine.maintain();
        assert_eq!(engine.live_len(), corpus.len());

        let recall = recall_over_corpus(&mut engine, &corpus);
        eprintln!(
            "churn harness: round {} recall@{K} = {recall} (maintenance: {rep:?})",
            round + 1
        );
        assert!(
            recall >= recall0 - 0.05,
            "round {}: recall@{K} degraded beyond bound: {recall} vs pre-churn {recall0}",
            round + 1
        );
    }
    assert_eq!(engine.pending_tombstones(), 0, "maintenance must compact");
}
