//! Larger-scale recall harness (ROADMAP item): a ~10^5-point synthetic
//! corpus through the dynamic-stream path, plus an fvecs round-trip of the
//! corpus through a real temp file.
//!
//! Ignored by default — roughly a minute of single-core work — so tier-1
//! `cargo test -q` stays fast. Run with:
//!
//! ```text
//! cargo test --release --test scale_recall -- --ignored
//! ```

use ann_core::ivf::{IvfPqIndex, IvfPqParams};

const N: usize = 100_000;
const K: usize = 10;

#[test]
#[ignore = "10^5-point harness (~1 min); run with --ignored or the CI bench leg"]
fn dynamic_stream_keeps_recall_at_scale() {
    let spec = datasets::SynthSpec::small("scale-100k", 16, N, 77);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        32,
        datasets::queries::QuerySkew::InDistribution,
        9,
    );

    // fvecs round-trip through an actual file: the readers must hand back
    // the exact corpus at this scale
    let path = std::env::temp_dir().join("drim_ann_scale_recall.fvecs");
    {
        let f = std::fs::File::create(&path).unwrap();
        datasets::io::write_fvecs(std::io::BufWriter::new(f), &data).unwrap();
    }
    let reread = {
        let f = std::fs::File::open(&path).unwrap();
        datasets::io::read_fvecs(std::io::BufReader::new(f)).unwrap()
    };
    std::fs::remove_file(&path).ok();
    assert_eq!(reread.len(), N);
    assert_eq!(reread, data, "fvecs round-trip must be lossless");

    // dynamic-stream path: index the first half, stream in the second
    let half = data.len() / 2;
    let initial = data.select(&(0..half).collect::<Vec<_>>());
    let mut idx = IvfPqIndex::build(&initial, &IvfPqParams::new(128).m(16).cb(64));
    for i in half..data.len() {
        idx.insert(i as u32, data.get(i));
    }
    assert_eq!(idx.len(), data.len());

    let truth = ann_core::flat::ground_truth(&queries, &data, K);
    let results: Vec<_> = (0..queries.len())
        .map(|qi| idx.search(queries.get(qi), 24, K))
        .collect();
    let recall = ann_core::recall::mean_recall(&results, &truth, K);
    eprintln!("scale harness: recall@{K} = {recall} over {N} points");
    // the seed's small-scale dynamic-stream test reached 0.81; the 10^5
    // corpus must hold that line
    assert!(recall >= 0.81, "recall@{K} = {recall} at {N} points");
}
