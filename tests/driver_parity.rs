//! The unified blocked-distance driver (`ann_core::blockscan`) against the
//! PR-3 hand-rolled loops, bit for bit.
//!
//! Before the driver existed, k-means assignment, `locate_batch` and
//! `cl::run` each rolled their own 32-wide block-GEMM +
//! `‖q‖² − 2·q·c + ‖c‖²` correction. These tests pin the ported consumers
//! to reference re-implementations of exactly those loops (per-row
//! `norm_sq_f32`, per-consumer scratch, `cl::run`'s old table-side-left
//! GEMM orientation) — at 1/2/4/8 threads, odd batch sizes, and tables
//! straddling the driver's M-split threshold
//! (`blockscan::M_SPLIT_MIN`), where the per-block product switches to the
//! pool-backed parallel GEMM.

use ann_core::blockscan;
use ann_core::ivf::{IvfPqIndex, IvfPqParams};
use ann_core::kernels;
use ann_core::linalg::MatrixView;
use ann_core::topk::{BoundedMaxHeap, Neighbor};
use ann_core::vector::VecSet;
use drim_ann::config::IndexConfig;
use drim_ann::kernels::cl;
use drim_ann::perf_model::{BitWidths, WorkloadShape};
use rayon::with_num_threads;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Batch sizes that don't divide evenly into driver blocks, plus a
/// single-query batch and one block-aligned batch.
const BATCH_SIZES: [usize; 4] = [1, 7, 33, 64];

fn workload(n: usize, nq: usize) -> (VecSet<f32>, VecSet<f32>) {
    let spec = datasets::SynthSpec::small("driver-parity", 16, n, 71);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        nq,
        datasets::queries::QuerySkew::InDistribution,
        9,
    );
    (data, queries)
}

fn subset(queries: &VecSet<f32>, n: usize) -> VecSet<f32> {
    queries.select(&(0..n).collect::<Vec<_>>())
}

fn prand_set(n: usize, dim: usize, seed: u64) -> VecSet<f32> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
    };
    let mut s = VecSet::new(dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| next()).collect();
        s.push(&v);
    }
    s
}

/// PR-3 `kmeans::assign_range_gemm`, verbatim: per-block `X_blk · Cᵀ`
/// cross terms, per-row `norm_sq_f32`, argmin on `‖c‖² − 2·x·c`.
fn ref_assign(data: &VecSet<f32>, centroids: &VecSet<f32>, cnorms: &[f32]) -> Vec<(u32, f32)> {
    const BLOCK: usize = 32;
    let dim = data.dim();
    let k = centroids.len();
    let cview = MatrixView::new(k, dim, centroids.as_flat());
    let mut out = Vec::with_capacity(data.len());
    let mut dots = vec![0.0f32; BLOCK.min(data.len().max(1)) * k];
    for blo in (0..data.len()).step_by(BLOCK) {
        let bhi = (blo + BLOCK).min(data.len());
        let rows = bhi - blo;
        let xv = MatrixView::new(rows, dim, &data.as_flat()[blo * dim..bhi * dim]);
        dots[..rows * k].fill(0.0);
        xv.matmul_t_into(&cview, &mut dots[..rows * k], k);
        for r in 0..rows {
            let mut best = (0usize, f32::INFINITY);
            for (j, (&cn, &dp)) in cnorms.iter().zip(&dots[r * k..(r + 1) * k]).enumerate() {
                let score = cn - 2.0 * dp;
                if score < best.1 {
                    best = (j, score);
                }
            }
            let qn = kernels::norm_sq_f32(data.get(blo + r));
            out.push((best.0 as u32, (best.1 + qn).max(0.0)));
        }
    }
    out
}

/// PR-3 `IvfPqIndex::locate_batch`, verbatim: query-side-left blocked GEMM,
/// per-row norm, bounded heap of `nprobe`.
fn ref_locate(
    queries: &VecSet<f32>,
    table: &VecSet<f32>,
    cnorms: &[f32],
    nprobe: usize,
) -> Vec<Vec<(u32, f32)>> {
    const BLOCK: usize = 32;
    let dim = queries.dim();
    let nlist = table.len();
    let cmat = MatrixView::new(nlist, dim, table.as_flat());
    let mut out = Vec::with_capacity(queries.len());
    let mut dots = vec![0.0f32; BLOCK.min(queries.len().max(1)) * nlist];
    for lo in (0..queries.len()).step_by(BLOCK) {
        let hi = (lo + BLOCK).min(queries.len());
        let rows = hi - lo;
        let qv = MatrixView::new(rows, dim, &queries.as_flat()[lo * dim..hi * dim]);
        dots[..rows * nlist].fill(0.0);
        qv.matmul_t_into(&cmat, &mut dots[..rows * nlist], nlist);
        for r in 0..rows {
            let qn = kernels::norm_sq_f32(queries.get(lo + r));
            let drow = &dots[r * nlist..(r + 1) * nlist];
            let mut heap = BoundedMaxHeap::new(nprobe);
            for (c, (&cn, &dp)) in cnorms.iter().zip(drow).enumerate() {
                let d = (qn + cn - 2.0 * dp).max(0.0);
                heap.push(Neighbor::new(c as u64, d));
            }
            out.push(
                heap.into_sorted()
                    .into_iter()
                    .map(|n| (n.id as u32, n.dist))
                    .collect(),
            );
        }
    }
    out
}

/// PR-3 `cl::run`'s per-block compute, verbatim — including its
/// *table-side-left* GEMM orientation (`C · Q_blkᵀ`), which the driver
/// replaced with the query-side-left form for small tables. IEEE
/// multiplication commutes and both orientations accumulate in
/// ascending-k order, so the probe sets must still match bit-for-bit.
fn ref_cl_probes(
    queries: &VecSet<f32>,
    table: &VecSet<f32>,
    cnorms: &[f32],
    nprobe: usize,
) -> Vec<Vec<u32>> {
    const BLOCK: usize = 32;
    let dim = queries.dim();
    let nlist = table.len();
    let cmat = MatrixView::new(nlist, dim, table.as_flat());
    let mut probes = Vec::with_capacity(queries.len());
    for lo in (0..queries.len()).step_by(BLOCK) {
        let hi = (lo + BLOCK).min(queries.len());
        let rows = hi - lo;
        let qv = MatrixView::new(rows, dim, &queries.as_flat()[lo * dim..hi * dim]);
        let dots = cmat.matmul_t(&qv);
        for r in 0..rows {
            let qn = kernels::norm_sq_f32(queries.get(lo + r));
            let mut heap = BoundedMaxHeap::new(nprobe);
            for (c, &cn) in cnorms.iter().enumerate() {
                let d = (qn + cn - 2.0 * dots.get(c, r)).max(0.0);
                heap.push(Neighbor::new(c as u64, d));
            }
            probes.push(
                heap.into_sorted()
                    .into_iter()
                    .map(|n| n.id as u32)
                    .collect::<Vec<u32>>(),
            );
        }
    }
    probes
}

#[test]
fn assignment_bit_identical_to_pr3_loop_across_threads() {
    let (data, _) = workload(2000, 1);
    let centroids = prand_set(48, 16, 5);
    let cnorms = kernels::row_norms_f32(centroids.as_flat(), 16);
    let want = ref_assign(&data, &centroids, &cnorms);
    for threads in THREAD_COUNTS {
        let got: Vec<u32> =
            with_num_threads(threads, || ann_core::kmeans::assign(&data, &centroids));
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(*g, w.0, "threads {threads}");
        }
        // and through the driver directly, distances included
        let mut pairs = Vec::new();
        with_num_threads(threads, || {
            blockscan::scan(
                &data,
                MatrixView::new(48, 16, centroids.as_flat()),
                &cnorms,
                &mut blockscan::Argmin { out: &mut pairs },
            )
        });
        for (g, w) in pairs.iter().zip(&want) {
            assert_eq!(g.0, w.0);
            assert_eq!(g.1.to_bits(), w.1.to_bits());
        }
    }
}

#[test]
fn locate_batch_bit_identical_to_pr3_loop_at_odd_batches() {
    let (data, queries) = workload(3000, 64);
    let idx = with_num_threads(1, || {
        IvfPqIndex::build(&data, &IvfPqParams::new(32).m(4).cb(16))
    });
    for nq in BATCH_SIZES {
        let qs = subset(&queries, nq);
        let want = ref_locate(&qs, &idx.coarse, &idx.coarse_norms, 7);
        for threads in THREAD_COUNTS {
            let got = with_num_threads(threads, || idx.locate_batch(&qs, 7));
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.len(), w.len(), "nq {nq} threads {threads}");
                for (a, b) in g.iter().zip(w) {
                    assert_eq!(a.0, b.0, "nq {nq} threads {threads}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "nq {nq} threads {threads}");
                }
            }
        }
    }
}

#[test]
fn cl_probes_and_charge_bit_identical_to_pr3_across_threads() {
    let (data, queries) = workload(3000, 64);
    let idx = with_num_threads(1, || {
        IvfPqIndex::build(&data, &IvfPqParams::new(32).m(4).cb(16))
    });
    let host = upmem_sim::platform::procs::xeon_silver_4216();
    for nq in BATCH_SIZES {
        let qs = subset(&queries, nq);
        let shape = WorkloadShape::new(
            data.len() as u64,
            nq,
            16,
            &IndexConfig {
                k: 10,
                nprobe: 6,
                nlist: 32,
                m: 4,
                cb: 16,
            },
            BitWidths::u8_regime(),
        );
        let want = ref_cl_probes(&qs, &idx.coarse, &idx.coarse_norms, 6);
        // the charge must be exactly the PR-3 whole-batch charge (the
        // driver tally sums to the query count)
        let want_host_s = cl::host_cl_time(nq, 32, &shape, &host);
        for threads in THREAD_COUNTS {
            let out = with_num_threads(threads, || {
                cl::run(&qs, &idx.coarse, &idx.coarse_norms, 6, &shape, &host)
            });
            assert_eq!(out.probes, want, "nq {nq} threads {threads}");
            assert_eq!(
                out.host_s.to_bits(),
                want_host_s.to_bits(),
                "nq {nq} threads {threads}"
            );
        }
    }
}

#[test]
fn msplit_threshold_boundary_is_bit_pure() {
    // tables just below, at, and above the driver's M-split threshold:
    // below it the per-block product is query-side-left and serial, at and
    // above it the product is table-side-left and pool-split — results
    // must be bitwise indistinguishable either way, at every thread count
    let dim = 8;
    let queries = prand_set(37, dim, 31);
    for nt in [
        blockscan::M_SPLIT_MIN - 1,
        blockscan::M_SPLIT_MIN,
        blockscan::M_SPLIT_MIN + 17,
    ] {
        let table = prand_set(nt, dim, 100 + nt as u64);
        let cnorms = kernels::row_norms_f32(table.as_flat(), dim);
        let want = ref_locate(&queries, &table, &cnorms, 5);
        for threads in THREAD_COUNTS {
            let mut got = Vec::new();
            with_num_threads(threads, || {
                blockscan::scan(
                    &queries,
                    MatrixView::new(nt, dim, table.as_flat()),
                    &cnorms,
                    &mut blockscan::TopN {
                        n: 5,
                        out: &mut got,
                    },
                )
            });
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                for (a, b) in g.iter().zip(w) {
                    assert_eq!(a.0, b.0, "nt {nt} threads {threads}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "nt {nt} threads {threads}");
                }
            }
        }
    }
}

#[test]
fn msplit_parallel_gemm_boundary_matches_serial_bitwise() {
    // the linalg M-split entry point at the stripe-boundary shapes the
    // driver feeds it (m = table rows, n = query block)
    use ann_core::linalg::GEMM_PAR_M_TILE;
    let dim = 8;
    let q = prand_set(32, dim, 7);
    let qv = MatrixView::new(32, dim, q.as_flat());
    for m in [
        GEMM_PAR_M_TILE,
        GEMM_PAR_M_TILE + 1,
        2 * GEMM_PAR_M_TILE + 5,
    ] {
        let t = prand_set(m, dim, 900 + m as u64);
        let tv = MatrixView::new(m, dim, t.as_flat());
        let mut serial = vec![0.0f32; m * 32];
        tv.matmul_t_into(&qv, &mut serial, 32);
        for threads in THREAD_COUNTS {
            let mut par = vec![0.0f32; m * 32];
            with_num_threads(threads, || {
                tv.matmul_t_into_par(&qv, &mut par, 32);
            });
            for i in 0..m * 32 {
                assert_eq!(
                    par[i].to_bits(),
                    serial[i].to_bits(),
                    "m {m} threads {threads} elem {i}"
                );
            }
        }
    }
}
