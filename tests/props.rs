//! Property-based invariants across crates (proptest).

use ann_core::topk::{merge_topk, BoundedMaxHeap, Neighbor};
use drim_ann::config::{EngineConfig, IndexConfig};
use drim_ann::layout::{ClusterInfo, LayoutPlan};
use drim_ann::sched::{expand_tasks, schedule, Policy};
use drim_ann::shard::{self, ShardConfig, ShardPlan};
use proptest::prelude::*;

fn arb_clusters() -> impl Strategy<Value = Vec<ClusterInfo>> {
    prop::collection::vec((1usize..2000, 0.0f64..100.0), 1..40).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (points, heat))| ClusterInfo {
                id: i as u32,
                points,
                heat: heat + 0.01,
            })
            .collect()
    })
}

fn engine_cfg(partition: bool, duplication: bool) -> EngineConfig {
    let mut cfg = EngineConfig::drim(IndexConfig {
        k: 10,
        nprobe: 4,
        nlist: 40,
        m: 4,
        cb: 16,
    });
    cfg.partition = partition;
    cfg.duplication = duplication;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every layout covers every cluster exactly once, copies live on
    /// distinct DPUs, and per-DPU bytes respect the budget.
    #[test]
    fn layout_conservation(clusters in arb_clusters(),
                           ndpus in 1usize..32,
                           partition in any::<bool>(),
                           duplication in any::<bool>()) {
        let total_points: usize = clusters.iter().map(|c| c.points).sum();
        let budget = ((total_points * 8 / ndpus) as u64 + 4096) * 2;
        let plan = LayoutPlan::build(&clusters, ndpus, &engine_cfg(partition, duplication), 8, budget);
        prop_assert!(plan.validate(&clusters).is_ok(), "{:?}", plan.validate(&clusters));
        // duplicates never exceed one copy per DPU
        for homes in &plan.slice_homes {
            prop_assert!(homes.len() <= ndpus);
        }
    }

    /// The scheduler never loses or duplicates a task, and every task runs
    /// on a DPU that hosts its slice.
    #[test]
    fn scheduler_conservation(clusters in arb_clusters(),
                              ndpus in 1usize..16,
                              nq in 1usize..20,
                              th3 in prop::option::of(0.01f64..2.0)) {
        let plan = LayoutPlan::build(&clusters, ndpus, &engine_cfg(true, true), 8, u64::MAX / 2);
        let probes: Vec<Vec<u32>> = (0..nq)
            .map(|q| {
                let a = (q % clusters.len()) as u32;
                let b = ((q * 7 + 3) % clusters.len()) as u32;
                if a == b { vec![a] } else { vec![a, b] }
            })
            .collect();
        let tasks = expand_tasks(&probes, &plan, |len| len as f64 + 1.0);
        let policy = match th3 {
            Some(t) => Policy::Greedy { th3: t },
            None => Policy::Static,
        };
        let sp = schedule(&tasks, &plan, ndpus, policy);
        prop_assert_eq!(sp.scheduled() + sp.postponed.len(), tasks.len());
        for (d, ts) in sp.per_dpu.iter().enumerate() {
            for t in ts {
                prop_assert!(plan.slice_homes[t.slice].contains(&d));
            }
        }
    }

    /// Bounded heap == sorted truncation of a full sort, for any input.
    #[test]
    fn bounded_heap_is_partial_sort(dists in prop::collection::vec(0.0f32..1e6, 1..300),
                                    k in 1usize..50) {
        let mut heap = BoundedMaxHeap::new(k);
        for (i, &d) in dists.iter().enumerate() {
            heap.push(Neighbor::new(i as u64, d));
        }
        let got: Vec<f32> = heap.into_sorted().iter().map(|n| n.dist).collect();
        let mut sorted = dists.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.truncate(k);
        prop_assert_eq!(got, sorted);
    }

    /// Merging per-DPU top-k lists equals the deduplicated top-k of the
    /// union (merge_topk keeps each id once — replicated slices may report
    /// the same vector from two DPUs; first-seen occurrence wins, matching
    /// the merge's scan order).
    #[test]
    fn merge_topk_equals_global(lists in prop::collection::vec(
            prop::collection::vec((0u64..1000, 0.0f32..1e6), 0..40), 1..6),
        k in 1usize..20) {
        let lists: Vec<Vec<Neighbor>> = lists
            .into_iter()
            .map(|l| l.into_iter().map(|(id, d)| Neighbor::new(id, d)).collect())
            .collect();
        let merged = merge_topk(&lists, k);
        // expected: first occurrence of each id in scan order, then top-k
        let mut seen = std::collections::HashSet::new();
        let mut all: Vec<Neighbor> = Vec::new();
        for l in &lists {
            for &n in l {
                if seen.insert(n.id) {
                    all.push(n);
                }
            }
        }
        all.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.id.cmp(&b.id)));
        all.truncate(k);
        let got: Vec<u64> = merged.iter().map(|n| n.id).collect();
        let want: Vec<u64> = all.iter().map(|n| n.id).collect();
        prop_assert_eq!(got, want);
    }

    /// The SQT is lossless over the whole signed-diff domain.
    #[test]
    fn sqt_lossless(diff in -255i32..=255) {
        let mut sqt = drim_ann::sqt::Sqt::for_u8();
        let mut meter = upmem_sim::meter::PhaseMeter::default();
        let got = sqt.square(diff, &mut meter, &upmem_sim::IsaCosts::upmem(), 8);
        prop_assert_eq!(got, (diff as i64 * diff as i64) as u64);
    }

    /// Zipf partitions conserve mass for any shape.
    #[test]
    fn zipf_partition_conserves(total in 1usize..100_000,
                                n in 1usize..256,
                                s in 0.0f64..2.0) {
        let sizes = datasets::zipf::zipf_partition(total, n, s);
        prop_assert_eq!(sizes.iter().sum::<usize>(), total);
        if total >= n {
            prop_assert!(sizes.iter().all(|&x| x >= 1));
        }
    }

    /// Scalar quantization round-trip error is bounded by half a step.
    #[test]
    fn quantizer_error_bounded(vals in prop::collection::vec(-1000.0f32..1000.0, 2..100)) {
        let set = ann_core::VecSet::from_flat(1, vals.clone());
        let q = ann_core::quantize::ScalarQuantizer::fit_u8(&set);
        for &v in &vals {
            let err = (q.decode(q.encode(v)) - v).abs();
            prop_assert!(err <= q.max_error() + 1e-3, "v={v} err={err}");
        }
    }

    /// Blocked u8 distance is bit-exact against the scalar reference for
    /// any length (including odd lengths and non-multiple-of-16 tails).
    #[test]
    fn blocked_u8_kernel_is_exact(a in prop::collection::vec(0u16..256, 0..200)) {
        let a: Vec<u8> = a.into_iter().map(|x| x as u8).collect();
        let b: Vec<u8> = a.iter().rev().cloned().collect();
        prop_assert_eq!(
            ann_core::kernels::l2_sq_u8(&a, &b),
            ann_core::distance::l2_sq_u8(&a, &b)
        );
    }

    /// Blocked f32 distance and dot agree with the scalar references to
    /// 1e-4 relative error for any length.
    #[test]
    fn blocked_f32_kernels_match_scalar(v in prop::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 0..200)) {
        let (a, b): (Vec<f32>, Vec<f32>) = v.into_iter().unzip();
        let (d_blk, d_ref) = (
            ann_core::kernels::l2_sq_f32(&a, &b),
            ann_core::distance::l2_sq_f32(&a, &b),
        );
        let denom = d_ref.abs().max(1.0);
        prop_assert!((d_blk - d_ref).abs() / denom <= 1e-4, "{d_blk} vs {d_ref}");
        let (p_blk, p_ref) = (
            ann_core::kernels::dot_f32(&a, &b),
            ann_core::distance::dot_f32(&a, &b),
        );
        let denom = p_ref.abs().max(1.0);
        prop_assert!((p_blk - p_ref).abs() / denom <= 1e-4, "{p_blk} vs {p_ref}");
    }

    /// The fused norm-decomposition batch kernel matches per-pair scalar
    /// distances for any (dim, rows) shape, relative to the operand scale.
    #[test]
    fn fused_batch_matches_scalar(dim in 1usize..40, nrows in 0usize..30, seed in 0u64..1000) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / u32::MAX as f32) * 20.0 - 10.0
        };
        let q: Vec<f32> = (0..dim).map(|_| next()).collect();
        let rows: Vec<f32> = (0..dim * nrows).map(|_| next()).collect();
        let norms = ann_core::kernels::row_norms_f32(&rows, dim);
        let mut fused = Vec::new();
        ann_core::kernels::l2_sq_batch(&q, &rows, dim, &norms, &mut fused);
        prop_assert_eq!(fused.len(), nrows);
        for (i, row) in rows.chunks_exact(dim).enumerate() {
            let exact = ann_core::distance::l2_sq_f32(&q, row);
            let scale = (norms[i] + exact).max(1.0);
            prop_assert!((fused[i] - exact).abs() / scale <= 1e-4,
                "dim {} row {}: {} vs {}", dim, i, fused[i], exact);
        }
    }

    /// The tiled micro-kernel GEMM matches the naive i-k-j reference on
    /// arbitrary (including ragged/degenerate) shapes, to reassociation
    /// error measured against the |A||B| operand scale.
    #[test]
    fn tiled_gemm_matches_naive(m in 0usize..40, k in 0usize..40, n in 0usize..40, seed in 0u64..1000) {
        use ann_core::linalg::Matrix;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / u32::MAX as f32) * 20.0 - 10.0
        };
        let a = Matrix::from_rows(m, k, (0..m * k).map(|_| next()).collect());
        let b = Matrix::from_rows(k, n, (0..k * n).map(|_| next()).collect());
        let tiled = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        let abs = |x: &Matrix| Matrix::from_rows(x.rows, x.cols, x.data.iter().map(|v| v.abs()).collect());
        let scale = abs(&a).matmul_naive(&abs(&b));
        for i in 0..tiled.data.len() {
            let s = scale.data[i].max(1.0);
            prop_assert!((tiled.data[i] - naive.data[i]).abs() / s <= 1e-5,
                "elem {}: {} vs {}", i, tiled.data[i], naive.data[i]);
        }
    }

    /// GEMM batch purity: any column subset of `A·Bᵀ` is bit-identical to
    /// the same columns of the full product — the property that makes
    /// `lut_batch` rows bit-identical to per-query `lut()` and batched CL
    /// bit-identical to per-query locate blocks.
    #[test]
    fn gemm_column_subsets_are_bit_pure(m in 1usize..30, k in 1usize..40, n in 1usize..30,
                                        lo in 0usize..30, width in 1usize..8, seed in 0u64..1000) {
        use ann_core::linalg::{Matrix, MatrixView};
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
        };
        let a = Matrix::from_rows(m, k, (0..m * k).map(|_| next()).collect());
        let b = Matrix::from_rows(n, k, (0..n * k).map(|_| next()).collect());
        let full = a.view().matmul_t(&b.view());
        let lo = lo.min(n - 1);
        let hi = (lo + width).min(n);
        let sub = MatrixView::new(hi - lo, k, &b.data[lo * k..hi * k]);
        let part = a.view().matmul_t(&sub);
        for i in 0..m {
            for j in lo..hi {
                prop_assert_eq!(part.get(i, j - lo).to_bits(), full.get(i, j).to_bits());
            }
        }
    }

    /// The rank router assigns every probe exactly once — no probe lost,
    /// none duplicated, and every assignment lands on a home rank of its
    /// cluster.
    #[test]
    fn router_assigns_every_probe_exactly_once(nclusters in 1usize..48,
                                               ranks in 1usize..9,
                                               replicas in 1usize..4,
                                               nq in 1usize..24,
                                               s in 0.0f64..1.6) {
        let heat: Vec<f64> = (1..=nclusters).map(|i| 1.0 / (i as f64).powf(s)).collect();
        let plan = ShardPlan::build(&heat, &ShardConfig::replicated(ranks, replicas)).unwrap();
        let probes: Vec<Vec<u32>> = (0..nq)
            .map(|q| {
                let a = (q % nclusters) as u32;
                let b = ((q * 5 + 2) % nclusters) as u32;
                if a == b { vec![a] } else { vec![a, b] }
            })
            .collect();
        let total: usize = probes.iter().map(Vec::len).sum();
        let rp = shard::route(&probes, &plan, |c| heat[c as usize] + 1.0, None).unwrap();
        prop_assert_eq!(rp.assigned(), total);
        prop_assert!(rp.lost.is_empty());
        let mut seen = std::collections::HashSet::new();
        for (r, pr) in rp.per_rank.iter().enumerate() {
            for &(q, c) in pr {
                prop_assert!(plan.cluster_ranks[c as usize].contains(&r),
                    "probe ({}, {}) routed off its homes", q, c);
                prop_assert!(seen.insert((q, c)), "probe ({}, {}) assigned twice", q, c);
            }
        }
    }

    /// Failover preserves full probe coverage whenever every cluster has
    /// at least two replica homes and a single rank dies: nothing is lost
    /// and nothing lands on the dead rank.
    #[test]
    fn failover_covers_all_probes_at_replication_two(nclusters in 1usize..48,
                                                     ranks in 2usize..9,
                                                     kill in 0usize..9,
                                                     nq in 1usize..24) {
        let heat: Vec<f64> = (1..=nclusters).map(|i| 1.0 / (i as f64).powf(1.2)).collect();
        let plan = ShardPlan::build(&heat, &ShardConfig::replicated(ranks, 2)).unwrap();
        prop_assert!(plan.min_replication() >= 2);
        let kill = kill % ranks;
        let mut dead = vec![false; ranks];
        dead[kill] = true;
        let probes: Vec<Vec<u32>> = (0..nq)
            .map(|q| {
                let a = (q % nclusters) as u32;
                let b = ((q * 7 + 3) % nclusters) as u32;
                if a == b { vec![a] } else { vec![a, b] }
            })
            .collect();
        let total: usize = probes.iter().map(Vec::len).sum();
        let rp = shard::route(&probes, &plan, |_| 1.0, Some(&dead)).unwrap();
        prop_assert!(rp.lost.is_empty(), "replication 2 must cover one dead rank");
        prop_assert_eq!(rp.assigned(), total);
        prop_assert!(rp.per_rank[kill].is_empty(), "dead rank must receive nothing");
    }

    /// In-batch dedup is invisible in results: for any duplication pattern
    /// (none, partial, or total duplication of an 8-query pool) a
    /// dedup-enabled engine returns bit-identical neighbors to a
    /// dedup-disabled one and reports exactly the number of skipped
    /// duplicate rows.
    #[test]
    fn in_batch_dedup_is_bit_invisible(pattern in prop::collection::vec(0usize..8, 1..24)) {
        use drim_ann::engine::DrimEngine;
        use std::sync::{Mutex, OnceLock};
        // One engine pair shared across cases: builds dominate the search
        // cost and the engines are stateless across batches here.
        static STATE: OnceLock<Mutex<(DrimEngine, DrimEngine, ann_core::VecSet<f32>)>> =
            OnceLock::new();
        let state = STATE.get_or_init(|| {
            let data = datasets::synth::generate(
                &datasets::synth::SynthSpec::small("dedup-prop", 16, 256, 9));
            let index = IndexConfig { k: 5, nprobe: 4, nlist: 16, m: 4, cb: 16 };
            let on = DrimEngine::build(&data, EngineConfig::drim(index),
                Default::default(), 8, None).unwrap();
            let mut cfg_off = EngineConfig::drim(index);
            cfg_off.dedup = false;
            let off = DrimEngine::build(&data, cfg_off, Default::default(), 8, None).unwrap();
            Mutex::new((on, off, data))
        });
        let mut g = state.lock().unwrap();
        let (on, off, data) = &mut *g;
        let mut queries = ann_core::VecSet::with_capacity(16, pattern.len());
        for &i in &pattern {
            queries.push(data.get(i * 13));
        }
        let (r_on, rep_on) = on.search_batch(&queries);
        let (r_off, rep_off) = off.search_batch(&queries);
        prop_assert_eq!(format!("{:?}", r_on), format!("{:?}", r_off));
        let distinct: std::collections::HashSet<usize> = pattern.iter().copied().collect();
        prop_assert_eq!(rep_on.deduped, pattern.len() - distinct.len());
        prop_assert_eq!(rep_on.queries, pattern.len());
        prop_assert_eq!(rep_off.deduped, 0);
    }

    /// Streaming-mutation safety invariants, under arbitrary interleaved
    /// insert/delete/search sequences against one long-lived engine:
    /// a search never returns a tombstoned id, never misses a live
    /// inserted point when probed with its own vector, and never moves
    /// the epoch — while every successful mutation strictly bumps it.
    #[test]
    fn interleaved_mutations_never_leak_tombstones_or_lose_inserts(
            ops in prop::collection::vec((0u8..3, 0usize..1024), 1..12)) {
        use drim_ann::engine::DrimEngine;
        use std::collections::{HashMap, HashSet};
        use std::sync::{Mutex, OnceLock};
        struct MutState {
            engine: DrimEngine,
            data: ann_core::VecSet<f32>,
            fresh: ann_core::VecSet<f32>,
            next_id: u32,
            cursor: usize,
            // Live inserted points: vector + the engine's own distance
            // for a self-query observed right after insert (None if the
            // point was immediately outranked). A point's code — and
            // therefore this distance — never changes while it is live,
            // across compaction, splits and migrations.
            live: HashMap<u32, (Vec<f32>, Option<f32>)>,
            dead: HashSet<u32>,
            base_deleted: usize,
        }
        // One engine evolves across all cases: tombstones, tail appends
        // and epochs accumulate, so later cases run against an index that
        // earlier cases already churned — a much deeper state space than
        // a per-case fresh build could reach.
        static STATE: OnceLock<Mutex<MutState>> = OnceLock::new();
        let state = STATE.get_or_init(|| {
            let data = datasets::synth::generate(
                &datasets::synth::SynthSpec::small("mut-prop", 16, 400, 11));
            let fresh = datasets::synth::generate(
                &datasets::synth::SynthSpec::small("mut-prop-new", 16, 1024, 12));
            let index = IndexConfig { k: 10, nprobe: 6, nlist: 16, m: 4, cb: 16 };
            let engine = DrimEngine::build(&data, EngineConfig::drim(index),
                Default::default(), 8, None).unwrap();
            Mutex::new(MutState {
                engine, data, fresh,
                next_id: 1_000_000, cursor: 0,
                live: HashMap::new(), dead: HashSet::new(), base_deleted: 0,
            })
        });
        let mut s = state.lock().unwrap();
        let s = &mut *s;
        for &(kind, sel) in &ops {
            let before = s.engine.epoch();
            match kind {
                0 => {
                    // Insert the next unused fresh vector under a new id.
                    let v = s.fresh.get(s.cursor % s.fresh.len()).to_vec();
                    s.cursor += 1;
                    let id = s.next_id;
                    s.next_id += 1;
                    s.engine.insert(id, &v).expect("insert fresh id");
                    prop_assert!(s.engine.epoch() > before, "insert must bump epoch");
                    // Self-query: the nearest centroid IS the insertion
                    // cluster, so the point is always in the probed
                    // candidate set; record the engine's distance for it
                    // if it makes the top-k right now.
                    let mut q = ann_core::VecSet::with_capacity(16, 1);
                    q.push(&v);
                    let (res, _) = s.engine.search_batch(&q);
                    let d_obs = res[0].iter().find(|n| n.id == id as u64).map(|n| n.dist);
                    s.live.insert(id, (v, d_obs));
                }
                1 => {
                    // Delete: a live inserted id when one exists, else the
                    // next base id; ids are never reused, so `dead` only
                    // ever grows.
                    let victim = s.live.keys().min().copied().or_else(|| {
                        (s.base_deleted < s.data.len()).then(|| {
                            s.base_deleted += 1;
                            (s.base_deleted - 1) as u32
                        })
                    });
                    if let Some(id) = victim {
                        prop_assert!(s.engine.delete(id), "victim {id} is live");
                        s.live.remove(&id);
                        s.dead.insert(id);
                        prop_assert!(s.engine.epoch() > before, "delete must bump epoch");
                    }
                    // Deleting an unknown id is a no-op with no bump.
                    let pre = s.engine.epoch();
                    prop_assert!(!s.engine.delete(9_999_999));
                    prop_assert!(s.engine.epoch() == pre,
                        "failed delete must not bump epoch");
                }
                _ => {
                    let mut q = ann_core::VecSet::with_capacity(16, 1);
                    q.push(s.data.get(sel % s.data.len()));
                    let (res, _) = s.engine.search_batch(&q);
                    for n in &res[0] {
                        prop_assert!(!s.dead.contains(&(n.id as u32)),
                            "tombstoned id {} surfaced in results", n.id);
                    }
                    prop_assert!(s.engine.epoch() == before,
                        "search must never move the epoch");
                }
            }
        }
        // A live inserted point is never *lost*: querying with its own
        // vector always probes the list holding it, and its code (hence
        // its engine-computed self-distance) is immutable while live. If
        // it was in the top-k right after insert, it may only disappear
        // by being outranked — k results all at distance <= its own —
        // never by the scan silently dropping it.
        let ids: Vec<u32> = s.live.keys().copied().take(4).collect();
        for id in ids {
            let (v, d_obs) = s.live[&id].clone();
            let Some(d_obs) = d_obs else { continue };
            let mut q = ann_core::VecSet::with_capacity(16, 1);
            q.push(&v);
            let (res, _) = s.engine.search_batch(&q);
            if res[0].iter().any(|n| n.id == id as u64) {
                continue;
            }
            let kth = res[0].last().map(|n| n.dist).unwrap_or(f32::INFINITY);
            prop_assert!(res[0].len() == 10 && kth <= d_obs,
                "live inserted id {id} dropped: kth dist {kth} > its own dist {d_obs}");
        }
    }

    /// The perf model is monotone: more probed clusters never cost less.
    #[test]
    fn perf_model_monotone_in_nprobe(nprobe in 1usize..128, extra in 1usize..64) {
        use drim_ann::perf_model::{BitWidths, WorkloadShape};
        let mk = |p: usize| WorkloadShape::new(
            1_000_000, 100, 64,
            &IndexConfig { k: 10, nprobe: p, nlist: 1024, m: 8, cb: 64 },
            BitWidths::u8_regime(),
        );
        let a = mk(nprobe);
        let b = mk(nprobe + extra);
        prop_assert!(b.c_lc() >= a.c_lc());
        prop_assert!(b.c_dc() >= a.c_dc());
        prop_assert!(b.io_dc() >= a.io_dc());
    }
}
