//! DSE integration: the Bayesian loop with a *measured* accuracy oracle on
//! a real (scaled) workload, plus calibration checks of the analytic proxy.

use ann_core::ivf::{IvfPqIndex, IvfPqParams};
use drim_ann::dse::{optimize, ParamSpace, ProxyAccuracy};
use drim_ann::IndexConfig;
use upmem_sim::platform::procs;
use upmem_sim::PimArch;

struct Fixture {
    data: ann_core::VecSet<f32>,
    queries: ann_core::VecSet<f32>,
    truth: Vec<Vec<u64>>,
}

fn fixture() -> Fixture {
    let spec = datasets::SynthSpec::small("dse", 16, 6_000, 31);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        24,
        datasets::queries::QuerySkew::InDistribution,
        17,
    );
    let truth = ann_core::flat::ground_truth(&queries, &data, 10);
    Fixture {
        data,
        queries,
        truth,
    }
}

fn measured_recall(
    fx: &Fixture,
    cfg: &IndexConfig,
    cache: &mut std::collections::HashMap<(usize, usize, usize), IvfPqIndex>,
) -> f64 {
    let index = cache.entry((cfg.nlist, cfg.m, cfg.cb)).or_insert_with(|| {
        IvfPqIndex::build(&fx.data, &IvfPqParams::new(cfg.nlist).m(cfg.m).cb(cfg.cb))
    });
    let results: Vec<_> = (0..fx.queries.len())
        .map(|qi| index.search(fx.queries.get(qi), cfg.nprobe, 10))
        .collect();
    ann_core::recall::mean_recall(&results, &fx.truth, 10)
}

#[test]
fn dse_with_measured_accuracy_meets_constraint() {
    let fx = fixture();
    let mut cache = Default::default();
    let mut oracle = |cfg: &IndexConfig| measured_recall(&fx, cfg, &mut cache);
    let space = ParamSpace {
        k: vec![10],
        nprobe: vec![4, 8, 16],
        nlist: vec![32, 64],
        m: vec![4, 8],
        cb: vec![16, 32],
        sqt_window: vec![2 << 10, 4 << 10, 8 << 10],
        objective: drim_ann::dse::DseObjective::Throughput,
    };
    let res = optimize(
        &space,
        fx.data.len() as u64,
        fx.data.dim(),
        64,
        &PimArch::upmem_sc25(),
        &procs::xeon_silver_4216(),
        &mut oracle,
        0.7,
        8,
    );
    assert!(
        res.best_recall >= 0.7,
        "constraint violated: {}",
        res.best_recall
    );
    // the chosen config should not be the most expensive corner when a
    // cheaper feasible one was observed
    let cheaper_feasible = res
        .evaluations
        .iter()
        .filter(|e| e.recall >= 0.7)
        .any(|e| e.qps > res.best_qps * 0.999);
    assert!(cheaper_feasible);
}

#[test]
fn proxy_and_measured_recall_agree_on_direction() {
    // calibration property recorded in EXPERIMENTS.md: the proxy need not
    // match measured recall absolutely, but must order configurations the
    // same way along each axis
    let fx = fixture();
    let mut cache = Default::default();
    let mut proxy = ProxyAccuracy::for_dim(fx.data.dim());
    use drim_ann::dse::bayes::AccuracyEval;

    let base = IndexConfig {
        k: 10,
        nprobe: 8,
        nlist: 64,
        m: 4,
        cb: 16,
    };
    let richer = [
        IndexConfig { nprobe: 16, ..base },
        IndexConfig { m: 8, ..base },
        IndexConfig { cb: 32, ..base },
    ];
    let m_base = measured_recall(&fx, &base, &mut cache);
    let p_base = proxy.eval(&base);
    for cfg in richer {
        let m = measured_recall(&fx, &cfg, &mut cache);
        let p = proxy.eval(&cfg);
        assert!(
            (m >= m_base - 0.03) == (p >= p_base - 1e-9),
            "direction mismatch at {cfg:?}: measured {m_base}->{m}, proxy {p_base}->{p}"
        );
    }
}

#[test]
fn dse_beats_the_default_config_on_throughput() {
    // Table 3's "with DSE" effect: the tuned configuration should out-run
    // the Faiss-compatible default at the same constraint
    let space = ParamSpace::paper_default();
    let mut proxy = ProxyAccuracy::for_dim(128);
    let res = optimize(
        &space,
        1_000_000_000,
        128,
        2000,
        &PimArch::upmem_sc25(),
        &procs::xeon_silver_4216(),
        &mut proxy,
        0.8,
        16,
    );
    use drim_ann::dse::bayes::AccuracyEval;
    use drim_ann::perf_model::{predict, BitWidths, WorkloadShape};
    let default_cfg = IndexConfig {
        k: 10,
        nprobe: 96,
        nlist: 1 << 14,
        m: 16,
        cb: 256,
    };
    let default_qps = predict(
        &WorkloadShape::new(
            1_000_000_000,
            2000,
            128,
            &default_cfg,
            BitWidths::u8_regime(),
        ),
        &PimArch::upmem_sc25(),
        &procs::xeon_silver_4216(),
        true,
    )
    .qps;
    assert!(proxy.eval(&res.best) >= 0.8);
    assert!(
        res.best_qps > default_qps,
        "DSE {:.0} should beat default {:.0}",
        res.best_qps,
        default_qps
    );
}
