//! Bit-identical results at every host thread count.
//!
//! The rayon shim executes on a real thread pool since PR 2 (persistent
//! pinned workers since PR 4); its
//! determinism contract is that chunk geometry is a pure function of input
//! length and all ordered combines run in chunk order, so the thread count
//! can never change a result. These tests pin that contract down on the
//! actual hot paths: CPU-baseline batch search, the engine's per-DPU
//! dispatch loop, cluster locating, flat ground truth, and k-means — at
//! 1/2/4/8 threads, including batch sizes that don't divide evenly into
//! chunks, and empty batches.

use ann_core::ivf::IvfPqParams;
use ann_core::topk::Neighbor;
use ann_core::vector::VecSet;
use baselines::cpu::CpuIvfPq;
use drim_ann::config::{EngineConfig, IndexConfig};
use drim_ann::engine::DrimEngine;
use drim_ann::kernels::cl;
use drim_ann::perf_model::{BitWidths, WorkloadShape};
use rayon::with_num_threads;
use upmem_sim::PimArch;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn workload(n: usize, nq: usize) -> (VecSet<f32>, VecSet<f32>) {
    let spec = datasets::SynthSpec::small("parallel-parity", 16, n, 23);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        nq,
        datasets::queries::QuerySkew::InDistribution,
        4,
    );
    (data, queries)
}

/// Bit-exact key for a result set: ids plus raw f32 distance bits.
fn result_bits(rs: &[Vec<Neighbor>]) -> Vec<Vec<(u64, u32)>> {
    rs.iter()
        .map(|l| l.iter().map(|n| (n.id, n.dist.to_bits())).collect())
        .collect()
}

fn subset(queries: &VecSet<f32>, n: usize) -> VecSet<f32> {
    queries.select(&(0..n).collect::<Vec<_>>())
}

#[test]
fn cpu_search_batch_bit_identical_across_thread_counts() {
    let (data, queries) = workload(2000, 64);
    let cpu = with_num_threads(1, || {
        CpuIvfPq::build(&data, &IvfPqParams::new(48).m(8).cb(32))
    });
    // batch sizes chosen to not divide evenly into pool chunks, plus a
    // single-query batch
    for nq in [1usize, 7, 33, 64] {
        let qs = subset(&queries, nq);
        let baseline = result_bits(&with_num_threads(1, || cpu.search_batch(&qs, 8, 10)));
        for threads in THREAD_COUNTS {
            let got = result_bits(&with_num_threads(threads, || cpu.search_batch(&qs, 8, 10)));
            assert_eq!(got, baseline, "nq = {nq}, threads = {threads}");
        }
    }
}

#[test]
fn cpu_search_batch_handles_empty_batch() {
    let (data, _) = workload(600, 4);
    let cpu = CpuIvfPq::build(&data, &IvfPqParams::new(16).m(4).cb(16));
    let empty = VecSet::new(data.dim());
    for threads in [1, 4] {
        let out = with_num_threads(threads, || cpu.search_batch(&empty, 4, 5));
        assert!(out.is_empty(), "threads = {threads}");
    }
}

#[test]
fn flat_ground_truth_bit_identical_across_thread_counts() {
    let (data, queries) = workload(1500, 33);
    let baseline = result_bits(&with_num_threads(1, || {
        ann_core::flat::exact_search_batch(&queries, &data, 10)
    }));
    for threads in THREAD_COUNTS {
        let got = result_bits(&with_num_threads(threads, || {
            ann_core::flat::exact_search_batch(&queries, &data, 10)
        }));
        assert_eq!(got, baseline, "threads = {threads}");
    }
    // empty query set
    let empty = VecSet::new(data.dim());
    assert!(
        with_num_threads(4, || ann_core::flat::exact_search_batch(&empty, &data, 10)).is_empty()
    );
}

#[test]
fn cluster_locating_probes_bit_identical_across_thread_counts() {
    let (data, queries) = workload(1200, 37);
    let params = IvfPqParams::new(32).m(8).cb(32);
    let idx = with_num_threads(1, || ann_core::ivf::IvfPqIndex::build(&data, &params));
    let shape = WorkloadShape::new(
        data.len() as u64,
        queries.len(),
        data.dim(),
        &IndexConfig {
            k: 10,
            nprobe: 6,
            nlist: 32,
            m: 8,
            cb: 32,
        },
        BitWidths::u8_regime(),
    );
    let host = upmem_sim::platform::procs::xeon_silver_4216();
    let baseline = with_num_threads(1, || {
        cl::run(&queries, &idx.coarse, &idx.coarse_norms, 6, &shape, &host)
    });
    for threads in THREAD_COUNTS {
        let got = with_num_threads(threads, || {
            cl::run(&queries, &idx.coarse, &idx.coarse_norms, 6, &shape, &host)
        });
        // probed cluster ids, their order, and the per-query probe counts
        assert_eq!(got.probes, baseline.probes, "threads = {threads}");
        assert_eq!(got.host_s.to_bits(), baseline.host_s.to_bits());
    }
}

#[test]
fn kmeans_bit_identical_across_thread_counts() {
    let (data, _) = workload(3000, 1);
    let params = ann_core::kmeans::KMeansParams::new(24).iters(8).seed(7);
    let baseline = with_num_threads(1, || ann_core::kmeans::kmeans(&data, &params));
    for threads in THREAD_COUNTS {
        let got = with_num_threads(threads, || ann_core::kmeans::kmeans(&data, &params));
        assert_eq!(got.centroids, baseline.centroids, "threads = {threads}");
        assert_eq!(got.assignments, baseline.assignments);
        assert_eq!(got.sizes, baseline.sizes);
        assert_eq!(got.inertia.to_bits(), baseline.inertia.to_bits());
    }
    // standalone assignment entry point too
    let base_assign = with_num_threads(1, || ann_core::kmeans::assign(&data, &baseline.centroids));
    for threads in THREAD_COUNTS {
        let got = with_num_threads(threads, || {
            ann_core::kmeans::assign(&data, &baseline.centroids)
        });
        assert_eq!(got, base_assign, "threads = {threads}");
    }
}

#[test]
fn tiled_gemm_bit_identical_across_thread_counts_and_batch_splits() {
    // the GEMM itself never reads the pool width, and its per-element
    // accumulation order is invariant to how callers split the batch —
    // the two properties every consumer's thread parity rests on
    use ann_core::linalg::{Matrix, MatrixView};
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
    };
    let (m, k, n) = (130usize, 96usize, 33usize);
    let a = Matrix::from_rows(m, k, (0..m * k).map(|_| next()).collect());
    let b = Matrix::from_rows(n, k, (0..n * k).map(|_| next()).collect());
    let baseline = with_num_threads(1, || a.view().matmul_t(&b.view()));
    for threads in THREAD_COUNTS {
        let got = with_num_threads(threads, || a.view().matmul_t(&b.view()));
        let bits = |mtx: &Matrix| -> Vec<u32> { mtx.data.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&got), bits(&baseline), "threads = {threads}");
    }
    // batch-split invariance: computing the product 5 columns at a time
    // reproduces the full product bit-for-bit
    for lo in (0..n).step_by(5) {
        let hi = (lo + 5).min(n);
        let sub = MatrixView::new(hi - lo, k, &b.data[lo * k..hi * k]);
        let part = a.view().matmul_t(&sub);
        for i in 0..m {
            for j in lo..hi {
                assert_eq!(part.get(i, j - lo).to_bits(), baseline.get(i, j).to_bits());
            }
        }
    }
}

#[test]
fn batched_lut_and_locate_bit_identical_across_thread_counts() {
    // lut_batch and locate_batch are sequential per call, but they sit on
    // hot paths whose callers parallelize — pin their outputs at every
    // pool width (and, transitively, the GEMM under them)
    let (data, queries) = workload(1500, 33);
    let params = IvfPqParams::new(24).m(8).cb(16);
    let idx = with_num_threads(1, || ann_core::ivf::IvfPqIndex::build(&data, &params));
    let lut_bits = |luts: &[f32]| -> Vec<u32> { luts.iter().map(|x| x.to_bits()).collect() };
    let base_lut = with_num_threads(1, || idx.quant.pq().lut_batch(&queries));
    let base_probes = with_num_threads(1, || idx.locate_batch(&queries, 5));
    for threads in THREAD_COUNTS {
        let lut = with_num_threads(threads, || idx.quant.pq().lut_batch(&queries));
        assert_eq!(lut_bits(&lut), lut_bits(&base_lut), "threads = {threads}");
        let probes = with_num_threads(threads, || idx.locate_batch(&queries, 5));
        let key = |ps: &Vec<Vec<(u32, f32)>>| -> Vec<Vec<(u32, u32)>> {
            ps.iter()
                .map(|p| p.iter().map(|&(c, d)| (c, d.to_bits())).collect())
                .collect()
        };
        assert_eq!(key(&probes), key(&base_probes), "threads = {threads}");
    }
}

#[test]
fn engine_batch_bit_identical_across_thread_counts() {
    let (data, queries) = workload(2500, 24);
    let cfg = EngineConfig::drim(IndexConfig {
        k: 10,
        nprobe: 12,
        nlist: 48,
        m: 8,
        cb: 32,
    });
    let mut engine = with_num_threads(1, || {
        DrimEngine::build(&data, cfg, PimArch::upmem_sc25(), 8, None).unwrap()
    });
    let (r0, rep0) = with_num_threads(1, || engine.search_batch(&queries));
    let baseline = result_bits(&r0);
    for threads in THREAD_COUNTS {
        let (r, rep) = with_num_threads(threads, || engine.search_batch(&queries));
        assert_eq!(result_bits(&r), baseline, "threads = {threads}");
        assert_eq!(rep.postponed, rep0.postponed, "threads = {threads}");
        assert_eq!(rep.queries, rep0.queries);
    }
}

#[test]
fn engine_built_under_different_thread_counts_is_identical() {
    // index construction itself (k-means, PQ encode, layout) must be
    // thread-count-invariant, not just the search path
    let (data, queries) = workload(1500, 16);
    let cfg = || {
        EngineConfig::drim(IndexConfig {
            k: 10,
            nprobe: 8,
            nlist: 32,
            m: 8,
            cb: 32,
        })
    };
    let mut e1 = with_num_threads(1, || {
        DrimEngine::build(&data, cfg(), PimArch::upmem_sc25(), 4, None).unwrap()
    });
    let mut e4 = with_num_threads(4, || {
        DrimEngine::build(&data, cfg(), PimArch::upmem_sc25(), 4, None).unwrap()
    });
    let (r1, _) = with_num_threads(1, || e1.search_batch(&queries));
    let (r4, _) = with_num_threads(4, || e4.search_batch(&queries));
    assert_eq!(result_bits(&r1), result_bits(&r4));
}
