//! Bit-identical results at every host thread count.
//!
//! The rayon shim executes on a real scoped thread pool since PR 2; its
//! determinism contract is that chunk geometry is a pure function of input
//! length and all ordered combines run in chunk order, so the thread count
//! can never change a result. These tests pin that contract down on the
//! actual hot paths: CPU-baseline batch search, the engine's per-DPU
//! dispatch loop, cluster locating, flat ground truth, and k-means — at
//! 1/2/4/8 threads, including batch sizes that don't divide evenly into
//! chunks, and empty batches.

use ann_core::ivf::IvfPqParams;
use ann_core::topk::Neighbor;
use ann_core::vector::VecSet;
use baselines::cpu::CpuIvfPq;
use drim_ann::config::{EngineConfig, IndexConfig};
use drim_ann::engine::DrimEngine;
use drim_ann::kernels::cl;
use drim_ann::perf_model::{BitWidths, WorkloadShape};
use rayon::with_num_threads;
use upmem_sim::PimArch;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn workload(n: usize, nq: usize) -> (VecSet<f32>, VecSet<f32>) {
    let spec = datasets::SynthSpec::small("parallel-parity", 16, n, 23);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        nq,
        datasets::queries::QuerySkew::InDistribution,
        4,
    );
    (data, queries)
}

/// Bit-exact key for a result set: ids plus raw f32 distance bits.
fn result_bits(rs: &[Vec<Neighbor>]) -> Vec<Vec<(u64, u32)>> {
    rs.iter()
        .map(|l| l.iter().map(|n| (n.id, n.dist.to_bits())).collect())
        .collect()
}

fn subset(queries: &VecSet<f32>, n: usize) -> VecSet<f32> {
    queries.select(&(0..n).collect::<Vec<_>>())
}

#[test]
fn cpu_search_batch_bit_identical_across_thread_counts() {
    let (data, queries) = workload(2000, 64);
    let cpu = with_num_threads(1, || {
        CpuIvfPq::build(&data, &IvfPqParams::new(48).m(8).cb(32))
    });
    // batch sizes chosen to not divide evenly into pool chunks, plus a
    // single-query batch
    for nq in [1usize, 7, 33, 64] {
        let qs = subset(&queries, nq);
        let baseline = result_bits(&with_num_threads(1, || cpu.search_batch(&qs, 8, 10)));
        for threads in THREAD_COUNTS {
            let got = result_bits(&with_num_threads(threads, || cpu.search_batch(&qs, 8, 10)));
            assert_eq!(got, baseline, "nq = {nq}, threads = {threads}");
        }
    }
}

#[test]
fn cpu_search_batch_handles_empty_batch() {
    let (data, _) = workload(600, 4);
    let cpu = CpuIvfPq::build(&data, &IvfPqParams::new(16).m(4).cb(16));
    let empty = VecSet::new(data.dim());
    for threads in [1, 4] {
        let out = with_num_threads(threads, || cpu.search_batch(&empty, 4, 5));
        assert!(out.is_empty(), "threads = {threads}");
    }
}

#[test]
fn flat_ground_truth_bit_identical_across_thread_counts() {
    let (data, queries) = workload(1500, 33);
    let baseline = result_bits(&with_num_threads(1, || {
        ann_core::flat::exact_search_batch(&queries, &data, 10)
    }));
    for threads in THREAD_COUNTS {
        let got = result_bits(&with_num_threads(threads, || {
            ann_core::flat::exact_search_batch(&queries, &data, 10)
        }));
        assert_eq!(got, baseline, "threads = {threads}");
    }
    // empty query set
    let empty = VecSet::new(data.dim());
    assert!(
        with_num_threads(4, || ann_core::flat::exact_search_batch(&empty, &data, 10)).is_empty()
    );
}

#[test]
fn cluster_locating_probes_bit_identical_across_thread_counts() {
    let (data, queries) = workload(1200, 37);
    let params = IvfPqParams::new(32).m(8).cb(32);
    let idx = with_num_threads(1, || ann_core::ivf::IvfPqIndex::build(&data, &params));
    let shape = WorkloadShape::new(
        data.len() as u64,
        queries.len(),
        data.dim(),
        &IndexConfig {
            k: 10,
            nprobe: 6,
            nlist: 32,
            m: 8,
            cb: 32,
        },
        BitWidths::u8_regime(),
    );
    let host = upmem_sim::platform::procs::xeon_silver_4216();
    let baseline = with_num_threads(1, || cl::run(&queries, &idx.coarse, 6, &shape, &host));
    for threads in THREAD_COUNTS {
        let got = with_num_threads(threads, || cl::run(&queries, &idx.coarse, 6, &shape, &host));
        // probed cluster ids, their order, and the per-query probe counts
        assert_eq!(got.probes, baseline.probes, "threads = {threads}");
        assert_eq!(got.host_s.to_bits(), baseline.host_s.to_bits());
    }
}

#[test]
fn kmeans_bit_identical_across_thread_counts() {
    let (data, _) = workload(3000, 1);
    let params = ann_core::kmeans::KMeansParams::new(24).iters(8).seed(7);
    let baseline = with_num_threads(1, || ann_core::kmeans::kmeans(&data, &params));
    for threads in THREAD_COUNTS {
        let got = with_num_threads(threads, || ann_core::kmeans::kmeans(&data, &params));
        assert_eq!(got.centroids, baseline.centroids, "threads = {threads}");
        assert_eq!(got.assignments, baseline.assignments);
        assert_eq!(got.sizes, baseline.sizes);
        assert_eq!(got.inertia.to_bits(), baseline.inertia.to_bits());
    }
    // standalone assignment entry point too
    let base_assign = with_num_threads(1, || ann_core::kmeans::assign(&data, &baseline.centroids));
    for threads in THREAD_COUNTS {
        let got = with_num_threads(threads, || {
            ann_core::kmeans::assign(&data, &baseline.centroids)
        });
        assert_eq!(got, base_assign, "threads = {threads}");
    }
}

#[test]
fn engine_batch_bit_identical_across_thread_counts() {
    let (data, queries) = workload(2500, 24);
    let cfg = EngineConfig::drim(IndexConfig {
        k: 10,
        nprobe: 12,
        nlist: 48,
        m: 8,
        cb: 32,
    });
    let mut engine = with_num_threads(1, || {
        DrimEngine::build(&data, cfg, PimArch::upmem_sc25(), 8, None).unwrap()
    });
    let (r0, rep0) = with_num_threads(1, || engine.search_batch(&queries));
    let baseline = result_bits(&r0);
    for threads in THREAD_COUNTS {
        let (r, rep) = with_num_threads(threads, || engine.search_batch(&queries));
        assert_eq!(result_bits(&r), baseline, "threads = {threads}");
        assert_eq!(rep.postponed, rep0.postponed, "threads = {threads}");
        assert_eq!(rep.queries, rep0.queries);
    }
}

#[test]
fn engine_built_under_different_thread_counts_is_identical() {
    // index construction itself (k-means, PQ encode, layout) must be
    // thread-count-invariant, not just the search path
    let (data, queries) = workload(1500, 16);
    let cfg = || {
        EngineConfig::drim(IndexConfig {
            k: 10,
            nprobe: 8,
            nlist: 32,
            m: 8,
            cb: 32,
        })
    };
    let mut e1 = with_num_threads(1, || {
        DrimEngine::build(&data, cfg(), PimArch::upmem_sc25(), 4, None).unwrap()
    });
    let mut e4 = with_num_threads(4, || {
        DrimEngine::build(&data, cfg(), PimArch::upmem_sc25(), 4, None).unwrap()
    });
    let (r1, _) = with_num_threads(1, || e1.search_batch(&queries));
    let (r4, _) = with_num_threads(4, || e4.search_batch(&queries));
    assert_eq!(result_bits(&r1), result_bits(&r4));
}
