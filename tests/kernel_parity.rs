//! Recall/result parity between the blocked kernel layer and scalar
//! reference pipelines.
//!
//! The blocked kernels (`ann_core::kernels`) reassociate float sums and use
//! the `‖q‖² − 2·q·c + ‖c‖²` decomposition; these tests pin down that none
//! of that changes *results*: cluster locating, k-means assignment, and
//! end-to-end IVF-PQ top-k all match an independently written scalar
//! implementation on real workloads.

use ann_core::distance;
use ann_core::ivf::{IvfPqIndex, IvfPqParams};
use ann_core::topk::{BoundedMaxHeap, Neighbor};
use ann_core::vector::VecSet;

fn workload(n: usize, dim: usize, seed: u64) -> (VecSet<f32>, VecSet<f32>) {
    let spec = datasets::SynthSpec::small("kernel-parity", dim, n, seed);
    let data = datasets::generate(&spec);
    let queries = datasets::queries::generate_queries(
        &spec,
        16,
        datasets::queries::QuerySkew::InDistribution,
        7,
    );
    (data, queries)
}

/// Scalar reference cluster locating: per-pair `distance::l2_sq_f32`.
fn locate_scalar(coarse: &VecSet<f32>, q: &[f32], nprobe: usize) -> Vec<u32> {
    let mut heap = BoundedMaxHeap::new(nprobe.min(coarse.len()).max(1));
    for (c, row) in coarse.iter().enumerate() {
        heap.push(Neighbor::new(c as u64, distance::l2_sq_f32(q, row)));
    }
    heap.into_sorted()
        .into_iter()
        .map(|n| n.id as u32)
        .collect()
}

/// Scalar reference IVF-PQ search: scalar LUT build, scalar ADC gather sum,
/// no bound pruning (every candidate offered to the heap).
fn search_scalar(idx: &IvfPqIndex, q: &[f32], nprobe: usize, k: usize) -> Vec<Neighbor> {
    let pq = idx.quant.pq();
    let (m, cb, dsub) = (idx.params.m, idx.params.cb, pq.dsub);
    let probes = locate_scalar(&idx.coarse, q, nprobe);
    let mut heap = BoundedMaxHeap::new(k);
    let mut residual = vec![0.0f32; idx.dim];
    for c in probes {
        let list = &idx.lists[c as usize];
        if list.is_empty() {
            continue;
        }
        ann_core::ivf::residual_into(q, idx.coarse.get(c as usize), &mut residual);
        // scalar LUT: per (subspace, codeword) pair, single-fold distance
        // over the zero-padded subvector
        let mut lut = vec![0.0f32; m * cb];
        for s in 0..m {
            let mut sub = vec![0.0f32; dsub];
            for d in 0..dsub {
                if s * dsub + d < residual.len() {
                    sub[d] = residual[s * dsub + d];
                }
            }
            let cbk = pq.codebook(s);
            for (j, row) in cbk.chunks_exact(dsub).enumerate() {
                lut[s * cb + j] = distance::l2_sq_f32(&sub, row);
            }
        }
        for (slot, code) in list.codes.chunks_exact(m).enumerate() {
            let mut acc = 0.0f32;
            for (s, &cidx) in code.iter().enumerate() {
                acc += lut[s * cb + cidx as usize];
            }
            heap.push(Neighbor::new(list.ids[slot] as u64, acc));
        }
    }
    heap.into_sorted()
}

#[test]
fn locate_matches_scalar_reference() {
    let (data, queries) = workload(3000, 16, 21);
    let idx = IvfPqIndex::build(&data, &IvfPqParams::new(48).m(8).cb(32));
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let fused: Vec<u32> = idx.locate(q, 8).into_iter().map(|(c, _)| c).collect();
        let scalar = locate_scalar(&idx.coarse, q, 8);
        assert_eq!(fused, scalar, "query {qi}");
    }
}

#[test]
fn search_matches_scalar_reference_topk() {
    let (data, queries) = workload(4000, 16, 33);
    let idx = IvfPqIndex::build(&data, &IvfPqParams::new(64).m(8).cb(32));
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let blocked: Vec<u64> = idx.search(q, 12, 10).iter().map(|n| n.id).collect();
        let scalar: Vec<u64> = search_scalar(&idx, q, 12, 10)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(blocked, scalar, "query {qi}");
    }
}

#[test]
fn assign_matches_scalar_argmin() {
    let (data, _) = workload(2500, 24, 45);
    let idx = IvfPqIndex::build(&data, &IvfPqParams::new(32).m(8).cb(16));
    let assigned = ann_core::kmeans::assign(&data, &idx.coarse);
    for (i, &a) in assigned.iter().enumerate() {
        let v = data.get(i);
        let mut best = (0u32, f32::INFINITY);
        for (c, row) in idx.coarse.iter().enumerate() {
            let d = distance::l2_sq_f32(v, row);
            if d < best.1 {
                best = (c as u32, d);
            }
        }
        assert_eq!(a, best.0, "point {i}");
    }
}

#[test]
fn recall_identical_between_pipelines() {
    let (data, queries) = workload(4000, 16, 57);
    let idx = IvfPqIndex::build(&data, &IvfPqParams::new(64).m(8).cb(32));
    let truth = ann_core::flat::ground_truth(&queries, &data, 10);
    let blocked: Vec<Vec<Neighbor>> = (0..queries.len())
        .map(|qi| idx.search(queries.get(qi), 12, 10))
        .collect();
    let scalar: Vec<Vec<Neighbor>> = (0..queries.len())
        .map(|qi| search_scalar(&idx, queries.get(qi), 12, 10))
        .collect();
    let rb = ann_core::recall::mean_recall(&blocked, &truth, 10);
    let rs = ann_core::recall::mean_recall(&scalar, &truth, 10);
    assert_eq!(rb, rs, "blocked {rb} vs scalar {rs}");
    assert!(rb > 0.6, "sanity: recall {rb}");
}

#[test]
fn wide_subvectors_exercise_the_unrolled_chunks() {
    // dim 96, m 12 -> dsub 8: every subvector fills one full unroll chunk,
    // so the LUT build goes through the multi-accumulator path (reassociated
    // sums) rather than the scalar-tail path
    let (data, queries) = workload(2000, 96, 81);
    let idx = IvfPqIndex::build(&data, &IvfPqParams::new(32).m(12).cb(32));
    let truth = ann_core::flat::ground_truth(&queries, &data, 10);
    let blocked: Vec<Vec<Neighbor>> = (0..queries.len())
        .map(|qi| idx.search(queries.get(qi), 8, 10))
        .collect();
    let scalar: Vec<Vec<Neighbor>> = (0..queries.len())
        .map(|qi| search_scalar(&idx, queries.get(qi), 8, 10))
        .collect();
    let rb = ann_core::recall::mean_recall(&blocked, &truth, 10);
    let rs = ann_core::recall::mean_recall(&scalar, &truth, 10);
    // reassociation may move individual distances by ULPs; the retrieved
    // neighbor sets — and therefore recall — must not move at all
    assert_eq!(rb, rs, "blocked {rb} vs scalar {rs}");
}

#[test]
fn lut_batch_rows_bit_identical_to_per_query_lut() {
    // the batched, GEMM-formulated LUT build promises bit-parity with
    // per-query lut() — for plain PQ and for OPQ (rotation folded in),
    // including dims that pad (dsub not a multiple of the unroll width)
    for (dim, m, cb) in [(16usize, 8usize, 32usize), (13, 4, 16), (96, 12, 32)] {
        let (data, queries) = workload(1200, dim, 91 + dim as u64);
        let pq = ann_core::pq::ProductQuantizer::train(&data, &ann_core::pq::PqParams::new(m, cb));
        let batch = pq.lut_batch(&queries);
        assert_eq!(batch.len(), queries.len() * m * cb);
        for qi in 0..queries.len() {
            let single = pq.lut(queries.get(qi));
            let row = &batch[qi * m * cb..(qi + 1) * m * cb];
            for (j, (&a, &b)) in row.iter().zip(single.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "dim {dim} query {qi} entry {j}: {a} vs {b}"
                );
            }
        }
    }
    // OPQ: rotate-then-lut must batch bit-identically too
    let (data, queries) = workload(800, 16, 131);
    let opq = ann_core::opq::Opq::train(&data, &ann_core::opq::OpqParams::new(8, 16));
    let batch = opq.lut_batch(&queries);
    for qi in 0..queries.len() {
        let single = opq.lut(queries.get(qi));
        let row = &batch[qi * single.len()..(qi + 1) * single.len()];
        assert!(
            row.iter()
                .zip(single.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "opq query {qi}"
        );
    }
}

#[test]
fn adc_results_unchanged_by_batched_luts() {
    // end to end: scanning a probed cluster with a lut_batch row gives the
    // same adc() distances — and the same search top-k — as per-query luts
    let (data, queries) = workload(3000, 16, 77);
    let idx = IvfPqIndex::build(&data, &IvfPqParams::new(48).m(8).cb(32));
    let pq = idx.quant.pq();
    let (m, cb) = (idx.params.m, idx.params.cb);
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let probes = idx.locate(q, 8);
        // residuals of the probed clusters, batched and per-query
        let mut residuals = VecSet::new(idx.dim);
        let mut residual = vec![0.0f32; idx.dim];
        let mut clusters = Vec::new();
        for &(c, _) in &probes {
            if idx.lists[c as usize].is_empty() {
                continue;
            }
            ann_core::ivf::residual_into(q, idx.coarse.get(c as usize), &mut residual);
            residuals.push(&residual);
            clusters.push(c);
        }
        let luts = idx.quant.lut_batch(&residuals);
        for (pi, &c) in clusters.iter().enumerate() {
            let single = idx.quant.lut(residuals.get(pi));
            let row = &luts[pi * m * cb..(pi + 1) * m * cb];
            let list = &idx.lists[c as usize];
            for code in list.codes.chunks_exact(m) {
                let a = pq.adc(row, code);
                let b = pq.adc(&single, code);
                assert_eq!(a.to_bits(), b.to_bits(), "query {qi} cluster {c}");
            }
        }
    }
}

#[test]
fn locate_batch_matches_per_query_locate() {
    // the GEMM-batched CL path must probe the same clusters as the
    // per-query fused kernel. The two associate the dot-product sum
    // differently (8-lane tree vs ascending-k chain), so distances may
    // differ in low-order bits and near-ULP ties may swap adjacent ranks:
    // assert set equality plus per-rank distance agreement, and order
    // agreement wherever ranks are separated by more than ULP noise.
    let spec = datasets::SynthSpec::small("kernel-parity", 24, 2500, 103);
    let data = datasets::generate(&spec);
    // 37 queries: crosses the 32-query GEMM block with a ragged remainder
    let queries = datasets::queries::generate_queries(
        &spec,
        37,
        datasets::queries::QuerySkew::InDistribution,
        7,
    );
    let idx = IvfPqIndex::build(&data, &IvfPqParams::new(40).m(8).cb(16));
    let batch = idx.locate_batch(&queries, 7);
    assert_eq!(batch.len(), queries.len());
    let rel_tol = 1e-5f32;
    for (qi, batched) in batch.iter().enumerate() {
        let single = idx.locate(queries.get(qi), 7);
        assert_eq!(batched.len(), single.len(), "query {qi}");
        let set = |ps: &[(u32, f32)]| -> std::collections::BTreeSet<u32> {
            ps.iter().map(|p| p.0).collect()
        };
        assert_eq!(set(batched), set(&single), "query {qi}: probe sets differ");
        // reassociation error lives at the scale of the decomposition's
        // operands (‖q‖² + ‖c‖²), not of the (possibly cancelled) distance
        let qn = ann_core::kernels::norm_sq_f32(queries.get(qi));
        for (rank, (b, s)) in batched.iter().zip(single.iter()).enumerate() {
            let scale = (qn + idx.coarse_norms[b.0 as usize]).max(1.0);
            assert!(
                (b.1 - s.1).abs() / scale <= rel_tol,
                "query {qi} rank {rank}: {} vs {}",
                b.1,
                s.1
            );
            if b.0 != s.0 {
                // a swap is only legitimate between near-tied ranks
                let gap = (b.1 - s.1).abs() / scale;
                assert!(
                    gap <= rel_tol,
                    "query {qi} rank {rank}: ids {} vs {} without a near-tie",
                    b.0,
                    s.0
                );
            }
        }
    }
}

#[test]
fn non_multiple_of_block_dims_and_lengths() {
    // dim 13 (not a multiple of 8), m 4 -> dsub 4 with padding; list
    // lengths arbitrary so the 8-wide ADC remainder path is exercised
    let (data, queries) = workload(1999, 13, 69);
    let idx = IvfPqIndex::build(&data, &IvfPqParams::new(24).m(4).cb(16));
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let blocked: Vec<u64> = idx.search(q, 6, 7).iter().map(|n| n.id).collect();
        let scalar: Vec<u64> = search_scalar(&idx, q, 6, 7).iter().map(|n| n.id).collect();
        assert_eq!(blocked, scalar, "query {qi}");
    }
}
